/**
 * remote.hpp — remote kernel execution over the oar fabric (§4.1).
 *
 * "The 'oar' system also provides a means to remotely compile and execute
 * kernels so that a user can have a simple compile and forget
 * experience." Remote *compilation* needs a toolchain service and is out
 * of scope (DESIGN.md §7); remote *execution* is implemented here: a
 * job_server publishes named streaming services — each a handler that
 * builds and runs a raft::map around the accepted connection — and
 * request_job() lets any node splice one of those services into its own
 * graph as if it were a local kernel.
 *
 * Wire protocol: client sends [u16 name_len][name]; server answers one
 * status byte (ACK/NAK) and, on ACK, hands the (full-duplex) connection
 * to the job handler. With the shared-connection tcp_source/tcp_sink
 * constructors, the handler's map reads requests from and writes results
 * to the same socket.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.hpp"

namespace raft::net {

class job_server
{
public:
    /** Handler: runs the service over the accepted connection (usually
     *  by executing a raft::map built around it); returns when the
     *  client's stream ends. */
    using handler_t =
        std::function<void( std::shared_ptr<tcp_connection> )>;

    static constexpr std::uint8_t ack = 0x06;
    static constexpr std::uint8_t nak = 0x15;

    job_server();
    ~job_server();

    job_server( const job_server & )            = delete;
    job_server &operator=( const job_server & ) = delete;

    /** Publish a named streaming service. */
    void register_job( const std::string &name, handler_t handler );

    std::uint16_t port() const noexcept;
    std::size_t served() const noexcept
    {
        return served_.load( std::memory_order_relaxed );
    }

    void stop();

private:
    void accept_loop();

    tcp_listener listener_;
    mutable std::mutex mutex_;
    std::map<std::string, handler_t> jobs_;
    std::vector<std::thread> workers_;
    std::thread accept_thread_;
    std::atomic<bool> running_{ true };
    std::atomic<std::size_t> served_{ 0 };
};

/**
 * Connect to a job server and start the named service. Returns the
 * full-duplex data connection on ACK; throws net_exception when the
 * server does not publish the job.
 */
std::shared_ptr<tcp_connection> request_job( const std::string &host,
                                             std::uint16_t port,
                                             const std::string &name );

} /** end namespace raft::net **/
