#include "net/socket.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "core/exceptions.hpp"
#include "runtime/inject.hpp"
#include "runtime/telemetry/metrics.hpp"

namespace raft::net {

namespace {

[[noreturn]] void throw_errno( const std::string &what )
{
    throw raft::net_exception( what + ": " +
                               std::string( std::strerror( errno ) ) );
}

} /** end anonymous namespace **/

/* ------------------------------------------------------------------ */
/* tcp_connection                                                       */
/* ------------------------------------------------------------------ */

tcp_connection::~tcp_connection() { close(); }

tcp_connection::tcp_connection( tcp_connection &&other ) noexcept
    : fd_( std::exchange( other.fd_, -1 ) )
{
}

tcp_connection &
tcp_connection::operator=( tcp_connection &&other ) noexcept
{
    if( this != &other )
    {
        close();
        fd_ = std::exchange( other.fd_, -1 );
    }
    return *this;
}

tcp_connection tcp_connection::connect( const std::string &host,
                                        const std::uint16_t port )
{
    const int fd = ::socket( AF_INET, SOCK_STREAM, 0 );
    if( fd < 0 )
    {
        throw_errno( "socket" );
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port   = htons( port );
    if( ::inet_pton( AF_INET, host.c_str(), &addr.sin_addr ) != 1 )
    {
        ::close( fd );
        throw raft::net_exception( "bad address: " + host );
    }
    if( ::connect( fd, reinterpret_cast<sockaddr *>( &addr ),
                   sizeof( addr ) ) != 0 )
    {
        ::close( fd );
        throw_errno( "connect " + host + ":" + std::to_string( port ) );
    }
    const int one = 1;
    ::setsockopt( fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof( one ) );
    return tcp_connection( fd );
}

tcp_connection tcp_connection::connect( const std::string &host,
                                        const std::uint16_t port,
                                        const connect_options &opts )
{
    const auto attempts = std::max<std::size_t>( 1, opts.max_attempts );
    auto delay          = opts.initial_backoff;
    auto jitter_state   = opts.jitter_seed;
    for( std::size_t a = 1;; ++a )
    {
        try
        {
            return connect( host, port );
        }
        catch( const raft::net_exception & )
        {
            if( a >= attempts )
            {
                throw;
            }
        }
        /** exponential backoff with deterministic multiplicative jitter:
         *  scale by [1-j, 1+j] drawn from a seeded splitmix64 stream **/
        auto sleep_ns = static_cast<double>( delay.count() );
        if( opts.jitter > 0.0 )
        {
            jitter_state += 0x9e3779b97f4a7c15ull;
            auto z = jitter_state;
            z      = ( z ^ ( z >> 30 ) ) * 0xbf58476d1ce4e5b9ull;
            z      = ( z ^ ( z >> 27 ) ) * 0x94d049bb133111ebull;
            z ^= z >> 31;
            const auto u =
                static_cast<double>( z >> 11 ) * 0x1.0p-53; /** [0,1) **/
            sleep_ns *= 1.0 + opts.jitter * ( 2.0 * u - 1.0 );
        }
        std::this_thread::sleep_for( std::chrono::nanoseconds(
            static_cast<std::int64_t>( std::max( 0.0, sleep_ns ) ) ) );
        const auto next = static_cast<double>( delay.count() ) *
                          opts.backoff_multiplier;
        delay = std::chrono::nanoseconds( std::min(
            static_cast<std::int64_t>( next ),
            static_cast<std::int64_t>( opts.max_backoff.count() ) ) );
    }
}

void tcp_connection::send_all( const void *data, const std::size_t n )
{
    if( raft::runtime::inject::should_kill( "net.send",
                                            std::to_string( fd_ ) ) )
    {
        kill();
    }
    raft::runtime::inject::maybe_delay( "net.send",
                                        std::to_string( fd_ ) );
    const auto *p  = static_cast<const char *>( data );
    std::size_t off = 0;
    while( off < n )
    {
        const auto k = ::send( fd_, p + off, n - off, MSG_NOSIGNAL );
        if( k < 0 && errno == EINTR )
        {
            continue; /** interrupted by a signal: not an error **/
        }
        if( k <= 0 )
        {
            throw_errno( "send" );
        }
        off += static_cast<std::size_t>( k );
    }
    if( telemetry::metrics_on() && n != 0 )
    {
        telemetry::net_bytes_sent_total().add( n );
    }
}

std::size_t tcp_connection::recv_some( void *data, const std::size_t n )
{
    if( raft::runtime::inject::should_kill( "net.recv",
                                            std::to_string( fd_ ) ) )
    {
        kill();
    }
    for( ;; )
    {
        const auto k = ::recv( fd_, data, n, 0 );
        if( k == 0 )
        {
            return 0; /** clean EOF **/
        }
        if( k < 0 )
        {
            if( errno == EINTR )
            {
                continue;
            }
            throw_errno( "recv" );
        }
        if( telemetry::metrics_on() )
        {
            telemetry::net_bytes_received_total().add(
                static_cast<std::uint64_t>( k ) );
        }
        return static_cast<std::size_t>( k );
    }
}

std::ptrdiff_t tcp_connection::recv_nowait( void *data,
                                            const std::size_t n )
{
    for( ;; )
    {
        const auto k = ::recv( fd_, data, n, MSG_DONTWAIT );
        if( k == 0 )
        {
            return -1; /** clean EOF **/
        }
        if( k < 0 )
        {
            if( errno == EINTR )
            {
                continue;
            }
            if( errno == EAGAIN || errno == EWOULDBLOCK )
            {
                return 0; /** nothing buffered yet **/
            }
            throw_errno( "recv" );
        }
        if( telemetry::metrics_on() )
        {
            telemetry::net_bytes_received_total().add(
                static_cast<std::uint64_t>( k ) );
        }
        return k;
    }
}

bool tcp_connection::recv_all( void *data, const std::size_t n )
{
    auto *p         = static_cast<char *>( data );
    std::size_t off = 0;
    while( off < n )
    {
        const auto k = ::recv( fd_, p + off, n - off, 0 );
        if( k == 0 )
        {
            if( off == 0 )
            {
                return false; /** clean EOF at message boundary **/
            }
            throw raft::net_exception( "peer closed mid-message" );
        }
        if( k < 0 )
        {
            if( errno == EINTR )
            {
                continue;
            }
            throw_errno( "recv" );
        }
        off += static_cast<std::size_t>( k );
    }
    if( telemetry::metrics_on() && n != 0 )
    {
        telemetry::net_bytes_received_total().add( n );
    }
    return true;
}

void tcp_connection::shutdown_write() noexcept
{
    if( fd_ >= 0 )
    {
        ::shutdown( fd_, SHUT_WR );
    }
}

void tcp_connection::kill() noexcept
{
    if( fd_ >= 0 )
    {
        ::shutdown( fd_, SHUT_RDWR );
    }
}

void tcp_connection::close() noexcept
{
    if( fd_ >= 0 )
    {
        /** wake any thread blocked in recv() before closing **/
        ::shutdown( fd_, SHUT_RDWR );
        ::close( fd_ );
        fd_ = -1;
    }
}

/* ------------------------------------------------------------------ */
/* tcp_listener                                                         */
/* ------------------------------------------------------------------ */

tcp_listener::tcp_listener( const std::uint16_t port )
{
    fd_ = ::socket( AF_INET, SOCK_STREAM, 0 );
    if( fd_ < 0 )
    {
        throw_errno( "socket" );
    }
    const int one = 1;
    ::setsockopt( fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof( one ) );
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port   = htons( port );
    ::inet_pton( AF_INET, "127.0.0.1", &addr.sin_addr );
    if( ::bind( fd_, reinterpret_cast<sockaddr *>( &addr ),
                sizeof( addr ) ) != 0 )
    {
        ::close( fd_ );
        throw_errno( "bind" );
    }
    if( ::listen( fd_, 16 ) != 0 )
    {
        ::close( fd_ );
        throw_errno( "listen" );
    }
    sockaddr_in bound{};
    socklen_t len = sizeof( bound );
    if( ::getsockname( fd_, reinterpret_cast<sockaddr *>( &bound ),
                       &len ) == 0 )
    {
        port_ = ntohs( bound.sin_port );
    }
}

tcp_listener::~tcp_listener() { close(); }

tcp_connection tcp_listener::accept()
{
    const int fd = ::accept( fd_, nullptr, nullptr );
    if( fd < 0 )
    {
        throw_errno( "accept" );
    }
    const int one = 1;
    ::setsockopt( fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof( one ) );
    return tcp_connection( fd );
}

void tcp_listener::close() noexcept
{
    if( fd_ >= 0 )
    {
        /** shutdown first: close() alone does not wake a thread blocked
         *  in accept() on Linux **/
        ::shutdown( fd_, SHUT_RDWR );
        ::close( fd_ );
        fd_ = -1;
    }
}

} /** end namespace raft::net **/
