/**
 * socket.hpp — thin RAII wrappers over TCP sockets (loopback-oriented).
 *
 * Substrate for the distributed layer: "RaftLib seamlessly integrates
 * TCP/IP networks, and the parallelized execution on multiple distributed
 * compute nodes is transparent to the programmer" (§1). In this offline
 * reproduction nodes are processes/threads on one host, so links run over
 * 127.0.0.1 — the code path (connect, framing, EOF semantics) is the real
 * one.
 */
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

namespace raft::net {

/**
 * Connection-establishment policy: retry a refused/failed connect with
 * exponential backoff plus deterministic jitter (de-synchronizes a herd of
 * reconnecting links without a global RNG). The default is the historical
 * single-shot behavior.
 */
struct connect_options
{
    std::size_t max_attempts{ 1 };
    std::chrono::nanoseconds initial_backoff{
        std::chrono::milliseconds( 10 ) };
    double backoff_multiplier{ 2.0 };
    std::chrono::nanoseconds max_backoff{ std::chrono::seconds( 1 ) };
    /** Each delay is scaled by a factor drawn from [1-jitter, 1+jitter]
     *  off a splitmix64 stream seeded with jitter_seed. */
    double jitter{ 0.1 };
    std::uint64_t jitter_seed{ 0x9e3779b97f4a7c15ull };

    /** Convenience: retry up to n attempts with the default curve. */
    static connect_options retry( const std::size_t n )
    {
        connect_options o;
        o.max_attempts = n;
        return o;
    }
};

/** Connected TCP socket: blocking, whole-message send/recv helpers. */
class tcp_connection
{
public:
    tcp_connection() = default;
    explicit tcp_connection( int fd ) : fd_( fd ) {}
    ~tcp_connection();

    tcp_connection( tcp_connection &&other ) noexcept;
    tcp_connection &operator=( tcp_connection &&other ) noexcept;
    tcp_connection( const tcp_connection & )            = delete;
    tcp_connection &operator=( const tcp_connection & ) = delete;

    /** Connect to host:port (throws net_exception on failure). */
    static tcp_connection connect( const std::string &host,
                                   std::uint16_t port );

    /** Connect with retry/backoff/jitter per `opts`; throws net_exception
     *  carrying the last errno once max_attempts are exhausted. */
    static tcp_connection connect( const std::string &host,
                                   std::uint16_t port,
                                   const connect_options &opts );

    bool valid() const noexcept { return fd_ >= 0; }
    int fd() const noexcept { return fd_; }

    /** Send exactly n bytes (throws on error / peer reset). */
    void send_all( const void *data, std::size_t n );

    /** Receive exactly n bytes. Returns false on clean EOF at a message
     *  boundary (0 bytes read so far); throws on mid-message EOF/error. */
    bool recv_all( void *data, std::size_t n );

    /** Receive up to n bytes in a single recv(2): blocks until at least one
     *  byte arrives, then returns whatever the kernel had buffered (the
     *  batched TCP source drains frames wholesale this way). Returns 0 on
     *  clean EOF; throws on error. */
    std::size_t recv_some( void *data, std::size_t n );

    /** Non-blocking receive of up to n bytes: returns the byte count
     *  (> 0), 0 when nothing is buffered yet, or -1 on clean EOF; throws
     *  on error. The reliable TCP sender drains acks this way between
     *  sends without stalling the stream. */
    std::ptrdiff_t recv_nowait( void *data, std::size_t n );

    /** Half-close the write side (signals EOF to the peer's reads). */
    void shutdown_write() noexcept;

    /** Hard-kill the link in place (both directions) without releasing
     *  the fd: the next send/recv on either end fails as if the network
     *  partitioned. Fault injection uses this; recovery is a reconnect. */
    void kill() noexcept;

    void close() noexcept;

private:
    int fd_{ -1 };
};

/** Listening socket bound to 127.0.0.1. Port 0 picks an ephemeral port. */
class tcp_listener
{
public:
    explicit tcp_listener( std::uint16_t port = 0 );
    ~tcp_listener();

    tcp_listener( const tcp_listener & )            = delete;
    tcp_listener &operator=( const tcp_listener & ) = delete;

    /** The actually bound port. */
    std::uint16_t port() const noexcept { return port_; }

    /** Block until a client connects. */
    tcp_connection accept();

    void close() noexcept;

private:
    int fd_{ -1 };
    std::uint16_t port_{ 0 };
};

} /** end namespace raft::net **/
