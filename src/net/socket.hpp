/**
 * socket.hpp — thin RAII wrappers over TCP sockets (loopback-oriented).
 *
 * Substrate for the distributed layer: "RaftLib seamlessly integrates
 * TCP/IP networks, and the parallelized execution on multiple distributed
 * compute nodes is transparent to the programmer" (§1). In this offline
 * reproduction nodes are processes/threads on one host, so links run over
 * 127.0.0.1 — the code path (connect, framing, EOF semantics) is the real
 * one.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace raft::net {

/** Connected TCP socket: blocking, whole-message send/recv helpers. */
class tcp_connection
{
public:
    tcp_connection() = default;
    explicit tcp_connection( int fd ) : fd_( fd ) {}
    ~tcp_connection();

    tcp_connection( tcp_connection &&other ) noexcept;
    tcp_connection &operator=( tcp_connection &&other ) noexcept;
    tcp_connection( const tcp_connection & )            = delete;
    tcp_connection &operator=( const tcp_connection & ) = delete;

    /** Connect to host:port (throws net_exception on failure). */
    static tcp_connection connect( const std::string &host,
                                   std::uint16_t port );

    bool valid() const noexcept { return fd_ >= 0; }
    int fd() const noexcept { return fd_; }

    /** Send exactly n bytes (throws on error / peer reset). */
    void send_all( const void *data, std::size_t n );

    /** Receive exactly n bytes. Returns false on clean EOF at a message
     *  boundary (0 bytes read so far); throws on mid-message EOF/error. */
    bool recv_all( void *data, std::size_t n );

    /** Receive up to n bytes in a single recv(2): blocks until at least one
     *  byte arrives, then returns whatever the kernel had buffered (the
     *  batched TCP source drains frames wholesale this way). Returns 0 on
     *  clean EOF; throws on error. */
    std::size_t recv_some( void *data, std::size_t n );

    /** Half-close the write side (signals EOF to the peer's reads). */
    void shutdown_write() noexcept;

    void close() noexcept;

private:
    int fd_{ -1 };
};

/** Listening socket bound to 127.0.0.1. Port 0 picks an ephemeral port. */
class tcp_listener
{
public:
    explicit tcp_listener( std::uint16_t port = 0 );
    ~tcp_listener();

    tcp_listener( const tcp_listener & )            = delete;
    tcp_listener &operator=( const tcp_listener & ) = delete;

    /** The actually bound port. */
    std::uint16_t port() const noexcept { return port_; }

    /** Block until a client connects. */
    tcp_connection accept();

    void close() noexcept;

private:
    int fd_{ -1 };
    std::uint16_t port_{ 0 };
};

} /** end namespace raft::net **/
