/**
 * shm.hpp — POSIX shared-memory stream allocation (§4.2: "Before a link
 * allocation type is selected (POSIX shared memory, heap allocated memory
 * or TCP link)...").
 *
 * A shm_ring<T> is a fixed-capacity SPSC ring living entirely inside a
 * shm_open/mmap region, so producer and consumer may be *separate
 * processes* (heavyweight-process kernels, §4.1). The control block uses
 * the same monotonic-counter publication discipline as ring_buffer; there
 * is no dynamic resizing across processes — shared-memory links use the
 * paper's buffer-cap engineering solution (§3) and are sized up front.
 *
 * shm_source / shm_sink kernels splice a typed stream through a region,
 * mirroring the tcp_source / tcp_sink pair.
 */
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <cstdint>
#include <string>
#include <type_traits>

#include "core/defs.hpp"
#include "core/exceptions.hpp"
#include "core/kernel.hpp"
#include "core/signal.hpp"

namespace raft::net {

/** RAII shm_open + mmap region. The creator owns (and unlinks) the name;
 *  attachers map an existing region. */
class shm_region
{
public:
    /** Create a fresh region of `bytes` (O_CREAT|O_EXCL). */
    static shm_region create( const std::string &name,
                              std::size_t bytes );
    /** Attach to an existing region. */
    static shm_region attach( const std::string &name,
                              std::size_t bytes );

    shm_region( shm_region &&other ) noexcept;
    shm_region &operator=( shm_region &&other ) noexcept;
    shm_region( const shm_region & )            = delete;
    shm_region &operator=( const shm_region & ) = delete;
    ~shm_region();

    void *data() const noexcept { return addr_; }
    std::size_t size() const noexcept { return bytes_; }
    const std::string &name() const noexcept { return name_; }

private:
    shm_region() = default;

    std::string name_;
    void *addr_{ nullptr };
    std::size_t bytes_{ 0 };
    bool owner_{ false };
};

namespace detail {

/** Control block at the head of the region (shared across processes). */
struct shm_ring_header
{
    std::uint64_t magic;
    std::uint64_t capacity; /**< power of two                      */
    alignas( cacheline_size ) std::atomic<std::uint64_t> head;
    alignas( cacheline_size ) std::atomic<std::uint64_t> tail;
    alignas( cacheline_size ) std::atomic<bool> write_closed;

    static constexpr std::uint64_t magic_value = 0x5248'4D53'5249'4E47;
};

} /** end namespace detail **/

/**
 * Cross-process SPSC ring over a shm_region. One side constructs with
 * role::create (sizing the region), the other with role::attach.
 */
template <class T> class shm_ring
{
    static_assert( std::is_trivially_copyable_v<T>,
                   "shared-memory streams carry trivially copyable "
                   "types" );

public:
    enum class role
    {
        create,
        attach
    };

    shm_ring( const std::string &name, const std::size_t capacity,
              const role r )
        : region_( r == role::create
                       ? shm_region::create(
                             name, region_bytes( capacity ) )
                       : shm_region::attach(
                             name, region_bytes( capacity ) ) )
    {
        header_ = static_cast<detail::shm_ring_header *>( region_.data() );
        slots_  = reinterpret_cast<slot *>( header_ + 1 );
        if( r == role::create )
        {
            header_->magic    = detail::shm_ring_header::magic_value;
            header_->capacity = raft::detail::pow2_ceil( capacity );
            header_->head.store( 0, std::memory_order_relaxed );
            header_->tail.store( 0, std::memory_order_relaxed );
            header_->write_closed.store( false,
                                         std::memory_order_release );
        }
        else if( header_->magic !=
                 detail::shm_ring_header::magic_value )
        {
            throw net_exception( "shm region '" + name +
                                 "' is not a raft ring" );
        }
    }

    std::size_t capacity() const noexcept
    {
        return header_->capacity;
    }

    std::size_t size() const noexcept
    {
        return static_cast<std::size_t>(
            header_->tail.load( std::memory_order_acquire ) -
            header_->head.load( std::memory_order_acquire ) );
    }

    bool try_push( const T &value, const signal sig = none ) noexcept
    {
        const auto t = header_->tail.load( std::memory_order_relaxed );
        const auto h = header_->head.load( std::memory_order_acquire );
        if( t - h >= header_->capacity )
        {
            return false;
        }
        auto &s = slots_[ t & ( header_->capacity - 1 ) ];
        s.value = value;
        s.sig   = sig;
        header_->tail.store( t + 1, std::memory_order_release );
        return true;
    }

    void push( const T &value, const signal sig = none )
    {
        raft::detail::backoff b;
        while( !try_push( value, sig ) )
        {
            b.pause();
        }
    }

    bool try_pop( T &out, signal *sig = nullptr ) noexcept
    {
        const auto h = header_->head.load( std::memory_order_relaxed );
        const auto t = header_->tail.load( std::memory_order_acquire );
        if( t == h )
        {
            return false;
        }
        auto &s = slots_[ h & ( header_->capacity - 1 ) ];
        out     = s.value;
        if( sig != nullptr )
        {
            *sig = s.sig;
        }
        header_->head.store( h + 1, std::memory_order_release );
        return true;
    }

    /** Blocking pop; throws closed_port_exception once drained+closed. */
    void pop( T &out, signal *sig = nullptr )
    {
        raft::detail::backoff b;
        while( !try_pop( out, sig ) )
        {
            if( write_closed() && size() == 0 )
            {
                throw closed_port_exception(
                    "shared-memory stream drained and closed" );
            }
            b.pause();
        }
    }

    void close_write() noexcept
    {
        header_->write_closed.store( true, std::memory_order_release );
    }

    bool write_closed() const noexcept
    {
        return header_->write_closed.load( std::memory_order_acquire );
    }

private:
    struct slot
    {
        T value;
        signal sig;
    };

    static std::size_t region_bytes( const std::size_t capacity )
    {
        return sizeof( detail::shm_ring_header ) +
               sizeof( slot ) * raft::detail::pow2_ceil( capacity );
    }

    shm_region region_;
    detail::shm_ring_header *header_{ nullptr };
    slot *slots_{ nullptr };
};

/** Terminal kernel: forward the input stream into a shm ring. */
template <class T> class shm_sink : public kernel
{
public:
    explicit shm_sink( std::shared_ptr<shm_ring<T>> ring )
        : kernel(), ring_( std::move( ring ) )
    {
        input.addPort<T>( "0" );
    }

    kstatus run() override
    {
        T value{};
        signal sig = none;
        try
        {
            input[ "0" ].pop<T>( value, &sig );
        }
        catch( const closed_port_exception & )
        {
            ring_->close_write();
            throw;
        }
        ring_->push( value, sig );
        return raft::proceed;
    }

private:
    std::shared_ptr<shm_ring<T>> ring_;
};

/** Source kernel: replay a shm ring into the local graph. */
template <class T> class shm_source : public kernel
{
public:
    explicit shm_source( std::shared_ptr<shm_ring<T>> ring )
        : kernel(), ring_( std::move( ring ) )
    {
        output.addPort<T>( "0" );
    }

    kstatus run() override
    {
        T value{};
        signal sig = none;
        try
        {
            ring_->pop( value, &sig );
        }
        catch( const closed_port_exception & )
        {
            return raft::stop;
        }
        output[ "0" ].push<T>( std::move( value ), sig );
        return raft::proceed;
    }

private:
    std::shared_ptr<shm_ring<T>> ring_;
};

} /** end namespace raft::net **/
