#include "net/shm.hpp"

#include <cerrno>
#include <cstring>
#include <utility>

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

namespace raft::net {

namespace {

[[noreturn]] void throw_errno( const std::string &what )
{
    throw net_exception( what + ": " +
                         std::string( std::strerror( errno ) ) );
}

} /** end anonymous namespace **/

shm_region shm_region::create( const std::string &name,
                               const std::size_t bytes )
{
    const int fd =
        ::shm_open( name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600 );
    if( fd < 0 )
    {
        throw_errno( "shm_open(create) " + name );
    }
    if( ::ftruncate( fd, static_cast<off_t>( bytes ) ) != 0 )
    {
        ::close( fd );
        ::shm_unlink( name.c_str() );
        throw_errno( "ftruncate " + name );
    }
    void *addr = ::mmap( nullptr, bytes, PROT_READ | PROT_WRITE,
                         MAP_SHARED, fd, 0 );
    ::close( fd );
    if( addr == MAP_FAILED )
    {
        ::shm_unlink( name.c_str() );
        throw_errno( "mmap " + name );
    }
    shm_region r;
    r.name_  = name;
    r.addr_  = addr;
    r.bytes_ = bytes;
    r.owner_ = true;
    return r;
}

shm_region shm_region::attach( const std::string &name,
                               const std::size_t bytes )
{
    const int fd = ::shm_open( name.c_str(), O_RDWR, 0600 );
    if( fd < 0 )
    {
        throw_errno( "shm_open(attach) " + name );
    }
    void *addr = ::mmap( nullptr, bytes, PROT_READ | PROT_WRITE,
                         MAP_SHARED, fd, 0 );
    ::close( fd );
    if( addr == MAP_FAILED )
    {
        throw_errno( "mmap " + name );
    }
    shm_region r;
    r.name_  = name;
    r.addr_  = addr;
    r.bytes_ = bytes;
    r.owner_ = false;
    return r;
}

shm_region::shm_region( shm_region &&other ) noexcept
    : name_( std::move( other.name_ ) ),
      addr_( std::exchange( other.addr_, nullptr ) ),
      bytes_( std::exchange( other.bytes_, 0 ) ),
      owner_( std::exchange( other.owner_, false ) )
{
}

shm_region &shm_region::operator=( shm_region &&other ) noexcept
{
    if( this != &other )
    {
        this->~shm_region();
        name_  = std::move( other.name_ );
        addr_  = std::exchange( other.addr_, nullptr );
        bytes_ = std::exchange( other.bytes_, 0 );
        owner_ = std::exchange( other.owner_, false );
    }
    return *this;
}

shm_region::~shm_region()
{
    if( addr_ != nullptr )
    {
        ::munmap( addr_, bytes_ );
    }
    if( owner_ && !name_.empty() )
    {
        ::shm_unlink( name_.c_str() );
    }
}

} /** end namespace raft::net **/
