/**
 * oar.hpp — the "oar" node mesh (§4.1).
 *
 * "A separate system called 'oar' is a mesh of network clients that
 * continually feed system information to each other. This information is
 * provided to RaftLib in order to continuously optimize and monitor Raft
 * kernels executing on multiple systems."
 *
 * Each oar_node runs a TCP listener; peers connect with connect_to(). A
 * heartbeat thread periodically pushes this node's status (load, free
 * queue capacity, kernel count) down every established link; a receiver
 * thread per link keeps a registry of the freshest status per peer. The
 * registry is what a distributed mapper would consult for "least loaded
 * node" decisions (exercised in tests and the distributed example).
 *
 * Remote compile-and-execute is out of scope (future work in the paper as
 * well); see DESIGN.md §7.
 */
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.hpp"

namespace raft::net {

/** One node's self-reported status (wire format: trivially copyable). */
struct node_status
{
    std::uint32_t node_id{ 0 };
    std::uint32_t kernel_count{ 0 };
    double load{ 0.0 };          /**< app-defined load metric        */
    double free_capacity{ 0.0 }; /**< app-defined headroom metric    */
    std::int64_t timestamp_ns{ 0 };
};

class oar_node
{
public:
    /** Start a node: listener on an ephemeral loopback port, heartbeat
     *  every `interval`. */
    oar_node( std::uint32_t node_id,
              std::chrono::milliseconds interval =
                  std::chrono::milliseconds( 20 ) );
    ~oar_node();

    oar_node( const oar_node & )            = delete;
    oar_node &operator=( const oar_node & ) = delete;

    std::uint16_t port() const noexcept;
    std::uint32_t id() const noexcept { return id_; }

    /** Establish a bidirectional status link to a peer node. */
    void connect_to( const std::string &host, std::uint16_t port );

    /** Update the status this node gossips. */
    void set_load( double load, double free_capacity,
                   std::uint32_t kernel_count );

    /** Freshest status received from each peer. */
    std::map<std::uint32_t, node_status> registry() const;

    /** Peer with the lowest load (this node excluded); nullopt-style:
     *  returns own id when no peers are known. */
    std::uint32_t least_loaded_peer() const;

    /** Number of established links (inbound + outbound). */
    std::size_t link_count() const;

    void stop();

private:
    void accept_loop();
    void receive_loop( std::size_t link_index );
    void heartbeat_loop();
    node_status self_status() const;

    std::uint32_t id_;
    std::chrono::milliseconds interval_;
    tcp_listener listener_;

    mutable std::mutex mutex_;
    /** deque: element references stay valid across push_back, so receiver
     *  threads can hold a link pointer while new peers join */
    std::deque<tcp_connection> links_;
    std::map<std::uint32_t, node_status> registry_;
    node_status self_{};

    std::atomic<bool> running_{ true };
    std::thread accept_thread_;
    std::thread heartbeat_thread_;
    std::vector<std::thread> receivers_;
};

} /** end namespace raft::net **/
