/**
 * reliable.hpp — mid-stream reconnect with exactly-once delivery.
 *
 * tcp_sink/tcp_source (tcp_kernels.hpp) treat a dropped connection as
 * end-of-stream: correct for the clean case, lossy under failure. The
 * reliable pair extends the wire format with sequence numbers, cumulative
 * acknowledgements, and a reconnect handshake, so a TCP link killed
 * mid-stream (a real partition or the raft::runtime::inject harness)
 * delivers every element exactly once end-to-end:
 *
 *  - sender → receiver data frame: [u8 sig][u64 seq][sizeof(T) payload]
 *  - sender → receiver heartbeat:  [0xFE]            (liveness, no data)
 *  - sender → receiver EOF:        [0xFF][u64 end_seq]
 *  - receiver → sender ack:        [u64 expected_seq]   (cumulative; sent
 *    every ack_interval frames and at EOF, on the same full-duplex socket)
 *  - reconnect handshake: on every (re)accept the receiver first sends
 *    [u64 expected_seq]; the sender trims its replay buffer to that point
 *    and retransmits from there.
 *
 * Exactly-once: the sender retains every unacknowledged element in a
 * replay buffer (bounded by `window`, which is ≫ ack_interval so steady
 * state never stalls), and the receiver drops any frame below its expected
 * sequence (duplicates from a replay overlap). Element order survives the
 * reconnect because TCP is in-order within a connection and replay always
 * restarts exactly at the receiver's expected sequence.
 *
 * Failure surface: the sender's connect uses net::connect_options retry
 * with exponential backoff + jitter; once attempts are exhausted the
 * net_exception escapes run() and the runtime cancels the graph.
 * Same-architecture nodes assumed, as for tcp_kernels.hpp.
 */
#pragma once

#include <cstring>
#include <deque>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/kernel.hpp"
#include "net/codec.hpp"
#include "net/socket.hpp"
#include "runtime/inject.hpp"
#include "runtime/telemetry/metrics.hpp"

namespace raft::net {

/** Terminal kernel on the sending node: reliable counterpart of
 *  tcp_sink<T>. */
template <class T> class reliable_tcp_sink : public kernel
{
    static_assert( std::is_trivially_copyable_v<T>,
                   "TCP streams carry trivially copyable types" );

public:
    /** Elements gathered per run() into a single send(2). */
    static constexpr std::size_t wire_batch = 64;
    /** Unacked elements retained for replay; send blocks past this. */
    static constexpr std::uint64_t window = 1024;

    reliable_tcp_sink( std::string host, const std::uint16_t port,
                       connect_options copts = connect_options::retry( 8 ),
                       std::string link_name = "reliable" )
        : kernel(), host_( std::move( host ) ), port_( port ),
          copts_( copts ), name_( std::move( link_name ) )
    {
        input.addPort<T>( "0" );
    }

    kstatus run() override
    {
        try
        {
            auto w = input[ "0" ].template pop_s<T>( wire_batch );
            for( std::size_t i = 0; i < w.size(); ++i )
            {
                replay_.push_back( entry{
                    static_cast<std::uint8_t>( w.sig( i ) ),
                    next_seq_++, w[ i ] } );
            }
        }
        catch( const closed_port_exception & )
        {
            finish();
            throw; /** normal completion path **/
        }
        transmit();
        return raft::proceed;
    }

private:
    struct entry
    {
        std::uint8_t sig;
        std::uint64_t seq;
        T value;
    };

    /** (Re)establish the link and run the handshake: the receiver leads
     *  with the sequence it expects next; everything older is acked. */
    void ensure_connected()
    {
        if( conn_.valid() )
        {
            return;
        }
        conn_ = tcp_connection::connect( host_, port_, copts_ );
        if( ever_connected_ && telemetry::metrics_on() )
        {
            telemetry::net_reconnects_total().add();
        }
        ever_connected_        = true;
        std::uint64_t expected = 0;
        if( !conn_.recv_all( &expected, sizeof( expected ) ) )
        {
            conn_.close();
            throw net_exception( "reliable handshake: peer closed" );
        }
        note_ack( expected );
        sent_seq_ = expected;
    }

    void note_ack( const std::uint64_t ack )
    {
        if( ack > acked_ )
        {
            acked_ = ack;
        }
        while( !replay_.empty() && replay_.front().seq < acked_ )
        {
            replay_.pop_front();
        }
    }

    /** Opportunistically drain any acks the receiver pushed. */
    void drain_acks()
    {
        std::uint8_t buf[ 256 ];
        for( ;; )
        {
            const auto got = conn_.recv_nowait( buf, sizeof( buf ) );
            if( got <= 0 )
            {
                if( got < 0 )
                {
                    throw net_exception( "reliable link: peer closed" );
                }
                return;
            }
            ack_partial_.insert( ack_partial_.end(), buf, buf + got );
            while( ack_partial_.size() >= sizeof( std::uint64_t ) )
            {
                std::uint64_t ack = 0;
                std::memcpy( &ack, ack_partial_.data(), sizeof( ack ) );
                ack_partial_.erase(
                    ack_partial_.begin(),
                    ack_partial_.begin() + sizeof( ack ) );
                note_ack( ack );
            }
        }
    }

    /** Blocking ack read (window full / EOF drain). */
    void await_ack()
    {
        while( ack_partial_.size() < sizeof( std::uint64_t ) )
        {
            std::uint8_t buf[ 64 ];
            const auto got = conn_.recv_some( buf, sizeof( buf ) );
            if( got == 0 )
            {
                throw net_exception( "reliable link: peer closed" );
            }
            ack_partial_.insert( ack_partial_.end(), buf, buf + got );
        }
        std::uint64_t ack = 0;
        std::memcpy( &ack, ack_partial_.data(), sizeof( ack ) );
        ack_partial_.erase( ack_partial_.begin(),
                            ack_partial_.begin() + sizeof( ack ) );
        note_ack( ack );
    }

    /** Send everything past sent_seq_; on a mid-stream link failure, drop
     *  the connection — the next attempt reconnects and replays. A
     *  connect policy exhaustion in ensure_connected() escapes run()
     *  instead: the receiver is gone for good and the graph must fail. */
    void transmit()
    {
        ensure_connected();
        try
        {
            if( runtime::inject::should_kill( "net.link", name_ ) )
            {
                conn_.kill();
            }
            drain_acks();
            while( sent_seq_ < next_seq_ &&
                   sent_seq_ - acked_ >= window )
            {
                await_ack(); /** window full: wait for the receiver **/
            }
            if( sent_seq_ >= next_seq_ )
            {
                return;
            }
            wire_.clear();
            wire_.push_back( scalar_heartbeat_frame ); /** liveness **/
            std::uint64_t frames = 0, replays = 0;
            for( const auto &e : replay_ )
            {
                if( e.seq < sent_seq_ )
                {
                    continue;
                }
                const auto base = wire_.size();
                wire_.resize( base + 1 + sizeof( std::uint64_t ) +
                              sizeof( T ) );
                wire_[ base ] = e.sig;
                std::memcpy( &wire_[ base + 1 ], &e.seq,
                             sizeof( e.seq ) );
                std::memcpy( &wire_[ base + 1 + sizeof( e.seq ) ],
                             &e.value, sizeof( T ) );
                ++frames;
                if( e.seq < high_water_ )
                {
                    ++replays; /** retransmission after a link loss **/
                }
            }
            conn_.send_all( wire_.data(), wire_.size() );
            sent_seq_ = next_seq_;
            if( next_seq_ > high_water_ )
            {
                high_water_ = next_seq_;
            }
            if( telemetry::metrics_on() )
            {
                /** batched per transmit: one fetch_add per counter **/
                telemetry::net_frames_total().add( frames );
                if( replays != 0 )
                {
                    telemetry::net_replayed_frames_total().add( replays );
                }
            }
        }
        catch( const net_exception & )
        {
            conn_.close();
            ack_partial_.clear();
            sent_seq_ = acked_; /** conservatively resend from the ack **/
        }
    }

    /** End of stream: replay until everything is acked, then send the EOF
     *  frame and wait for the final cumulative ack. Reconnects as needed;
     *  throws once the reconnect budget (one full connect policy per
     *  finish attempt, max_attempts attempts) is exhausted. */
    void finish()
    {
        std::size_t attempts = 0;
        for( ;; )
        {
            try
            {
                ensure_connected();
                transmit();
                if( !conn_.valid() )
                {
                    continue; /** transmit lost the link; reconnect **/
                }
                std::uint8_t eof[ 1 + sizeof( std::uint64_t ) ];
                eof[ 0 ] = scalar_eof_frame;
                std::memcpy( eof + 1, &next_seq_, sizeof( next_seq_ ) );
                conn_.send_all( eof, sizeof( eof ) );
                while( acked_ < next_seq_ )
                {
                    await_ack();
                }
                conn_.close();
                return;
            }
            catch( const net_exception & )
            {
                if( ++attempts >= std::max<std::size_t>(
                                      1, copts_.max_attempts ) )
                {
                    throw; /** the receiver is not coming back **/
                }
                conn_.close();
                ack_partial_.clear();
                sent_seq_ = acked_;
            }
        }
    }

    std::string host_;
    std::uint16_t port_;
    connect_options copts_;
    std::string name_;
    tcp_connection conn_;
    std::deque<entry> replay_;
    std::vector<std::uint8_t> wire_;
    std::vector<std::uint8_t> ack_partial_;
    std::uint64_t next_seq_{ 0 }; /**< next sequence to assign          */
    std::uint64_t sent_seq_{ 0 }; /**< next sequence to transmit        */
    std::uint64_t acked_{ 0 };    /**< receiver's cumulative ack        */
    std::uint64_t high_water_{ 0 }; /**< highest seq ever transmitted   */
    bool ever_connected_{ false };
};

/** Source kernel on the receiving node: reliable counterpart of
 *  tcp_source<T>. Owns the listening socket so the sender can reconnect
 *  mid-stream. */
template <class T> class reliable_tcp_source : public kernel
{
    static_assert( std::is_trivially_copyable_v<T>,
                   "TCP streams carry trivially copyable types" );

public:
    /** Frames acknowledged per cumulative ack (≪ sender window). */
    static constexpr std::uint64_t ack_interval = 32;

    explicit reliable_tcp_source( const std::uint16_t port = 0 )
        : kernel(), listener_( port )
    {
        output.addPort<T>( "0" );
    }

    /** The bound port (give this to the sink). */
    std::uint16_t port() const noexcept { return listener_.port(); }

    kstatus run() override
    {
        if( !conn_.valid() )
        {
            if( eof_done_ )
            {
                return raft::stop;
            }
            conn_ = listener_.accept();
            rx_.clear(); /** partial frame of a dead link is replayed **/
            try
            {
                conn_.send_all( &expected_, sizeof( expected_ ) );
            }
            catch( const net_exception & )
            {
                conn_.close();
                return raft::proceed;
            }
        }
        std::uint8_t buf[ 4096 ];
        std::size_t got = 0;
        try
        {
            got = conn_.recv_some( buf, sizeof( buf ) );
        }
        catch( const net_exception & )
        {
            conn_.close();
            return raft::proceed; /** sender will reconnect **/
        }
        if( got == 0 )
        {
            /** peer closed: done if the stream completed, else wait for
             *  the reconnect **/
            conn_.close();
            return eof_done_ ? raft::stop : raft::proceed;
        }
        rx_.insert( rx_.end(), buf, buf + got );
        parse();
        if( since_ack_ >= ack_interval || eof_done_ )
        {
            send_ack();
        }
        return raft::proceed;
    }

private:
    void send_ack()
    {
        since_ack_ = 0;
        try
        {
            conn_.send_all( &expected_, sizeof( expected_ ) );
        }
        catch( const net_exception & )
        {
            conn_.close();
        }
    }

    void parse()
    {
        constexpr std::size_t data_frame =
            1 + sizeof( std::uint64_t ) + sizeof( T );
        std::size_t off = 0;
        while( off < rx_.size() )
        {
            const auto sig = rx_[ off ];
            if( sig == scalar_heartbeat_frame )
            {
                ++off;
                continue;
            }
            if( sig == scalar_eof_frame )
            {
                if( rx_.size() - off < 1 + sizeof( std::uint64_t ) )
                {
                    break;
                }
                std::uint64_t end = 0;
                std::memcpy( &end, rx_.data() + off + 1, sizeof( end ) );
                off += 1 + sizeof( end );
                if( end != expected_ )
                {
                    throw net_exception(
                        "reliable stream: EOF at sequence " +
                        std::to_string( end ) + ", expected " +
                        std::to_string( expected_ ) );
                }
                eof_done_ = true;
                continue;
            }
            if( rx_.size() - off < data_frame )
            {
                break;
            }
            std::uint64_t seq = 0;
            std::memcpy( &seq, rx_.data() + off + 1, sizeof( seq ) );
            if( seq < expected_ )
            {
                /** duplicate from a replay overlap: drop **/
                if( telemetry::metrics_on() )
                {
                    telemetry::net_duplicate_frames_total().add();
                }
                off += data_frame;
                continue;
            }
            if( seq > expected_ )
            {
                throw net_exception(
                    "reliable stream: sequence gap (" +
                    std::to_string( seq ) + " > " +
                    std::to_string( expected_ ) + ")" );
            }
            T v;
            std::memcpy( &v, rx_.data() + off + 1 + sizeof( seq ),
                         sizeof( T ) );
            output[ "0" ].push(
                v, static_cast<signal>( rx_[ off ] ) );
            ++expected_;
            ++since_ack_;
            off += data_frame;
        }
        rx_.erase( rx_.begin(),
                   rx_.begin() + static_cast<std::ptrdiff_t>( off ) );
    }

    tcp_listener listener_;
    tcp_connection conn_;
    std::vector<std::uint8_t> rx_;
    std::uint64_t expected_{ 0 };
    std::uint64_t since_ack_{ 0 };
    bool eof_done_{ false };
};

} /** end namespace raft::net **/
