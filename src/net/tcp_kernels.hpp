/**
 * tcp_kernels.hpp — kernels that extend a stream across a TCP link.
 *
 * "Stream processing also naturally lends itself to distributed (network)
 * processing, where network links simply become part of the stream" (§1).
 * A tcp_sink<T> on the producing node and a tcp_source<T> on the consuming
 * node splice a typed stream over a socket; end-of-stream propagates as a
 * framed EOF marker, so the remote application terminates exactly like a
 * local one. Elements must be trivially copyable (the wire format is the
 * in-memory representation; same-architecture nodes assumed — see
 * DESIGN.md §7).
 *
 * Frame layout: 1 signal byte, then sizeof(T) payload bytes.
 * EOF frame: signal byte 0xFF, no payload.
 */
#pragma once

#include <cstring>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/kernel.hpp"
#include "net/codec.hpp"
#include "net/socket.hpp"

namespace raft::net {

namespace detail {
inline constexpr std::uint8_t eof_frame = scalar_eof_frame;
} /** end namespace detail **/

/** Terminal kernel on the sending node: forwards its input stream over a
 *  connected socket. Drains its queue through a read window, so a burst of
 *  elements costs one queue handshake and one send(2) instead of one of
 *  each per element; the per-element wire format is unchanged. */
template <class T> class tcp_sink : public kernel
{
    static_assert( std::is_trivially_copyable_v<T>,
                   "TCP streams carry trivially copyable types" );

public:
    /** Elements gathered per run() into a single send(2). */
    static constexpr std::size_t wire_batch = 64;

    explicit tcp_sink( tcp_connection conn )
        : tcp_sink( std::make_shared<tcp_connection>(
              std::move( conn ) ) )
    {
    }

    /** Shared-connection form: lets a tcp_source on the same socket's
     *  read side coexist (full-duplex remote services, net/remote.hpp). */
    explicit tcp_sink( std::shared_ptr<tcp_connection> conn )
        : kernel(), conn_( std::move( conn ) )
    {
        input.addPort<T>( "0" );
        wire_.reserve( wire_batch * ( 1 + sizeof( T ) ) );
    }

    kstatus run() override
    {
        wire_.clear();
        try
        {
            auto w = input[ "0" ].template pop_s<T>( wire_batch );
            for( std::size_t i = 0; i < w.size(); ++i )
            {
                append_scalar_frame(
                    wire_, static_cast<std::uint8_t>( w.sig( i ) ),
                    &w[ i ], sizeof( T ) );
            }
        }
        catch( const closed_port_exception & )
        {
            const std::uint8_t frame = detail::eof_frame;
            conn_->send_all( &frame, 1 );
            conn_->shutdown_write();
            throw; /** normal completion path **/
        }
        conn_->send_all( wire_.data(), wire_.size() );
        return raft::proceed;
    }

private:
    std::shared_ptr<tcp_connection> conn_;
    std::vector<std::uint8_t> wire_;
};

/** Source kernel on the receiving node: replays the remote stream. Reads
 *  whatever the kernel socket buffer holds in one recv(2), then publishes
 *  every complete frame through one write-window claim; partial frames
 *  carry over to the next run(). */
template <class T> class tcp_source : public kernel
{
    static_assert( std::is_trivially_copyable_v<T>,
                   "TCP streams carry trivially copyable types" );

public:
    /** Frames' worth of buffer offered to each recv(2). */
    static constexpr std::size_t wire_batch = 64;

    explicit tcp_source( tcp_connection conn )
        : tcp_source( std::make_shared<tcp_connection>(
              std::move( conn ) ) )
    {
    }

    explicit tcp_source( std::shared_ptr<tcp_connection> conn )
        : kernel(), conn_( std::move( conn ) )
    {
        output.addPort<T>( "0" );
        rx_.reserve( wire_batch * ( 1 + sizeof( T ) ) );
    }

    kstatus run() override
    {
        if( !eof_ )
        {
            const auto base = rx_.size();
            rx_.resize( base + wire_batch * ( 1 + sizeof( T ) ) );
            const auto got =
                conn_->recv_some( rx_.data() + base, rx_.size() - base );
            rx_.resize( base + got );
            if( got == 0 )
            {
                eof_ = true; /** peer closed without an EOF frame **/
            }
            /** drop keep-alive bytes so frames sit contiguously **/
            rx_.resize( compact_scalar_frames( rx_.data(), rx_.size(),
                                               sizeof( T ) ) );
        }
        const auto scan =
            scan_scalar_frames( rx_.data(), rx_.size(), sizeof( T ) );
        eof_ = eof_ || scan.eof;
        std::size_t emitted = 0;
        while( emitted < scan.frames )
        {
            auto w = output[ "0" ].template allocate_range<T>(
                scan.frames - emitted );
            for( std::size_t i = 0; i < w.size(); ++i )
            {
                const auto *frame = rx_.data() +
                    ( emitted + i ) * ( 1 + sizeof( T ) );
                std::memcpy( &w[ i ], frame + 1, sizeof( T ) );
                w.set_signal( i, static_cast<signal>( frame[ 0 ] ) );
            }
            emitted += w.size();
        }
        rx_.erase( rx_.begin(),
                   rx_.begin() + static_cast<std::ptrdiff_t>(
                       scan.consumed ) );
        if( eof_ )
        {
            /** every complete frame was emitted; any leftover bytes are a
             *  truncated trailing frame from a mid-message peer close **/
            return raft::stop;
        }
        return raft::proceed;
    }

private:
    std::shared_ptr<tcp_connection> conn_;
    std::vector<std::uint8_t> rx_;
    bool eof_{ false };
};

/**
 * Batching + compressing variants (§4.2 future work: "link data
 * compression"). The sink gathers up to `batch` elements (with their
 * in-band signals), RLE-compresses the batch, and ships one frame:
 *
 *   [u32 element_count][u32 compressed_bytes][payload]
 *
 * element_count 0 marks end-of-stream. Struct padding and repeated
 * payloads compress well; worst case costs one extra copy plus ≤ 2×
 * frame size, still amortized by batching.
 */
template <class T> class tcp_sink_compressed : public kernel
{
    static_assert( std::is_trivially_copyable_v<T>,
                   "TCP streams carry trivially copyable types" );

public:
    explicit tcp_sink_compressed( tcp_connection conn,
                                  const std::size_t batch = 256 )
        : kernel(), conn_( std::move( conn ) ),
          batch_( batch == 0 ? 1 : batch )
    {
        input.addPort<T>( "0" );
        values_.reserve( batch_ );
        sigs_.reserve( batch_ );
    }

    kstatus run() override
    {
        try
        {
            /** drain a whole window per handshake instead of one pop **/
            auto w = input[ "0" ].template pop_s<T>(
                batch_ - values_.size() );
            for( std::size_t i = 0; i < w.size(); ++i )
            {
                values_.push_back( w[ i ] );
                sigs_.push_back( w.sig( i ) );
            }
        }
        catch( const closed_port_exception & )
        {
            flush();
            const std::uint32_t eof[ 2 ] = { 0, 0 };
            conn_.send_all( eof, sizeof( eof ) );
            conn_.shutdown_write();
            throw;
        }
        if( values_.size() >= batch_ )
        {
            flush();
        }
        return raft::proceed;
    }

private:
    void flush()
    {
        if( values_.empty() )
        {
            return;
        }
        const auto n = values_.size();
        std::vector<std::uint8_t> raw( n * ( sizeof( T ) + 1 ) );
        std::memcpy( raw.data(), values_.data(), n * sizeof( T ) );
        for( std::size_t i = 0; i < n; ++i )
        {
            raw[ n * sizeof( T ) + i ] =
                static_cast<std::uint8_t>( sigs_[ i ] );
        }
        const auto packed = rle_compress( raw.data(), raw.size() );
        const std::uint32_t header[ 2 ] = {
            static_cast<std::uint32_t>( n ),
            static_cast<std::uint32_t>( packed.size() )
        };
        conn_.send_all( header, sizeof( header ) );
        conn_.send_all( packed.data(), packed.size() );
        values_.clear();
        sigs_.clear();
    }

    tcp_connection conn_;
    std::size_t batch_;
    std::vector<T> values_;
    std::vector<signal> sigs_;
};

/** Receiving end of tcp_sink_compressed. */
template <class T> class tcp_source_compressed : public kernel
{
    static_assert( std::is_trivially_copyable_v<T>,
                   "TCP streams carry trivially copyable types" );

public:
    explicit tcp_source_compressed( tcp_connection conn )
        : kernel(), conn_( std::move( conn ) )
    {
        output.addPort<T>( "0" );
    }

    kstatus run() override
    {
        std::uint32_t header[ 2 ] = { 0, 0 };
        if( !conn_.recv_all( header, sizeof( header ) ) ||
            header[ 0 ] == 0 )
        {
            return raft::stop;
        }
        const std::size_t n = header[ 0 ];
        std::vector<std::uint8_t> packed( header[ 1 ] );
        if( !conn_.recv_all( packed.data(), packed.size() ) )
        {
            return raft::stop;
        }
        const auto expect = n * ( sizeof( T ) + 1 );
        const auto raw =
            rle_decompress( packed.data(), packed.size(), expect );
        if( raw.size() != expect )
        {
            throw net_exception( "compressed frame size mismatch" );
        }
        /** publish the decoded batch through write windows: one queue
         *  handshake per claimed run instead of one per element **/
        std::size_t emitted = 0;
        while( emitted < n )
        {
            auto w =
                output[ "0" ].template allocate_range<T>( n - emitted );
            for( std::size_t i = 0; i < w.size(); ++i )
            {
                std::memcpy( &w[ i ],
                             raw.data() + ( emitted + i ) * sizeof( T ),
                             sizeof( T ) );
                w.set_signal(
                    i, static_cast<signal>(
                           raw[ n * sizeof( T ) + emitted + i ] ) );
            }
            emitted += w.size();
        }
        return raft::proceed;
    }

private:
    tcp_connection conn_;
};

} /** end namespace raft::net **/
