#include "net/codec.hpp"

#include <algorithm>
#include <cstring>

namespace raft::net {

void append_scalar_frame( std::vector<std::uint8_t> &out,
                          const std::uint8_t sig,
                          const void *payload,
                          const std::size_t payload_size )
{
    const auto base = out.size();
    out.resize( base + 1 + payload_size );
    out[ base ] = sig;
    std::memcpy( out.data() + base + 1, payload, payload_size );
}

frame_scan_result scan_scalar_frames( const std::uint8_t *data,
                                      const std::size_t n,
                                      const std::size_t payload_size ) noexcept
{
    frame_scan_result r;
    const auto frame_size = 1 + payload_size;
    while( r.consumed < n )
    {
        if( data[ r.consumed ] == scalar_eof_frame )
        {
            ++r.consumed;
            r.eof = true;
            break;
        }
        if( data[ r.consumed ] == scalar_heartbeat_frame )
        {
            ++r.consumed; /** keep-alive: no payload, not an element **/
            continue;
        }
        if( n - r.consumed < frame_size )
        {
            break; /** partial trailing frame: wait for more bytes **/
        }
        r.consumed += frame_size;
        ++r.frames;
    }
    return r;
}

std::size_t compact_scalar_frames( std::uint8_t *data, const std::size_t n,
                                   const std::size_t payload_size ) noexcept
{
    const auto frame_size = 1 + payload_size;
    std::size_t rd = 0, wr = 0;
    while( rd < n )
    {
        if( data[ rd ] == scalar_heartbeat_frame )
        {
            ++rd;
            continue;
        }
        if( data[ rd ] == scalar_eof_frame )
        {
            data[ wr++ ] = data[ rd++ ];
            break;
        }
        const auto take = std::min( frame_size, n - rd );
        if( wr != rd )
        {
            std::memmove( data + wr, data + rd, take );
        }
        wr += take;
        rd += take;
    }
    /** tail after EOF (or a partial frame) carries over verbatim **/
    if( rd < n && wr != rd )
    {
        std::memmove( data + wr, data + rd, n - rd );
    }
    wr += n - rd;
    return wr;
}

std::vector<std::uint8_t> rle_compress( const std::uint8_t *data,
                                        const std::size_t n )
{
    std::vector<std::uint8_t> out;
    out.reserve( n / 2 + 8 );
    std::size_t i = 0;
    while( i < n )
    {
        const auto byte = data[ i ];
        std::size_t run = 1;
        while( i + run < n && data[ i + run ] == byte && run < 255 )
        {
            ++run;
        }
        out.push_back( byte );
        out.push_back( static_cast<std::uint8_t>( run ) );
        i += run;
    }
    return out;
}

std::vector<std::uint8_t> rle_decompress( const std::uint8_t *data,
                                          const std::size_t n,
                                          const std::size_t max_output )
{
    if( n % 2 != 0 )
    {
        throw net_exception( "malformed RLE stream: odd length" );
    }
    std::vector<std::uint8_t> out;
    out.reserve( std::min( max_output, n * 4 ) );
    for( std::size_t i = 0; i < n; i += 2 )
    {
        const auto byte = data[ i ];
        const auto run  = static_cast<std::size_t>( data[ i + 1 ] );
        if( run == 0 )
        {
            throw net_exception( "malformed RLE stream: zero run" );
        }
        if( out.size() + run > max_output )
        {
            throw net_exception( "RLE stream exceeds expected size" );
        }
        out.insert( out.end(), run, byte );
    }
    return out;
}

void put_varint( std::vector<std::uint8_t> &out, std::uint64_t v )
{
    while( v >= 0x80 )
    {
        out.push_back( static_cast<std::uint8_t>( v ) | 0x80 );
        v >>= 7;
    }
    out.push_back( static_cast<std::uint8_t>( v ) );
}

const std::uint8_t *get_varint( const std::uint8_t *p,
                                const std::uint8_t *end,
                                std::uint64_t &out )
{
    out        = 0;
    int shift  = 0;
    for( ;; )
    {
        if( p == end )
        {
            throw net_exception( "truncated varint" );
        }
        if( shift >= 64 )
        {
            throw net_exception( "varint overflow" );
        }
        const auto byte = *p++;
        out |= static_cast<std::uint64_t>( byte & 0x7F ) << shift;
        if( ( byte & 0x80 ) == 0 )
        {
            return p;
        }
        shift += 7;
    }
}

} /** end namespace raft::net **/
