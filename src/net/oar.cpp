#include "net/oar.hpp"

#include <algorithm>
#include <limits>

#include "core/defs.hpp"
#include "core/exceptions.hpp"

namespace raft::net {

oar_node::oar_node( const std::uint32_t node_id,
                    const std::chrono::milliseconds interval )
    : id_( node_id ), interval_( interval ), listener_( 0 )
{
    self_.node_id      = id_;
    self_.timestamp_ns = raft::detail::now_ns();
    accept_thread_    = std::thread( [ this ]() { accept_loop(); } );
    heartbeat_thread_ = std::thread( [ this ]() { heartbeat_loop(); } );
}

oar_node::~oar_node() { stop(); }

std::uint16_t oar_node::port() const noexcept { return listener_.port(); }

void oar_node::connect_to( const std::string &host,
                           const std::uint16_t port )
{
    auto conn = tcp_connection::connect( host, port );
    const std::lock_guard<std::mutex> lock( mutex_ );
    links_.push_back( std::move( conn ) );
    const auto index = links_.size() - 1;
    receivers_.emplace_back(
        [ this, index ]() { receive_loop( index ); } );
}

void oar_node::set_load( const double load, const double free_capacity,
                         const std::uint32_t kernel_count )
{
    const std::lock_guard<std::mutex> lock( mutex_ );
    self_.load          = load;
    self_.free_capacity = free_capacity;
    self_.kernel_count  = kernel_count;
}

std::map<std::uint32_t, node_status> oar_node::registry() const
{
    const std::lock_guard<std::mutex> lock( mutex_ );
    return registry_;
}

std::uint32_t oar_node::least_loaded_peer() const
{
    const std::lock_guard<std::mutex> lock( mutex_ );
    std::uint32_t best = id_;
    double best_load   = std::numeric_limits<double>::infinity();
    for( const auto &[ peer, status ] : registry_ )
    {
        if( status.load < best_load )
        {
            best_load = status.load;
            best      = peer;
        }
    }
    return best;
}

std::size_t oar_node::link_count() const
{
    const std::lock_guard<std::mutex> lock( mutex_ );
    return links_.size();
}

void oar_node::stop()
{
    if( !running_.exchange( false ) )
    {
        return;
    }
    listener_.close();
    {
        const std::lock_guard<std::mutex> lock( mutex_ );
        for( auto &l : links_ )
        {
            l.close();
        }
    }
    if( accept_thread_.joinable() )
    {
        accept_thread_.join();
    }
    if( heartbeat_thread_.joinable() )
    {
        heartbeat_thread_.join();
    }
    std::vector<std::thread> receivers;
    {
        const std::lock_guard<std::mutex> lock( mutex_ );
        receivers = std::move( receivers_ );
    }
    for( auto &r : receivers )
    {
        if( r.joinable() )
        {
            r.join();
        }
    }
}

node_status oar_node::self_status() const
{
    const std::lock_guard<std::mutex> lock( mutex_ );
    node_status s    = self_;
    s.timestamp_ns   = raft::detail::now_ns();
    return s;
}

void oar_node::accept_loop()
{
    while( running_.load( std::memory_order_acquire ) )
    {
        try
        {
            auto conn = listener_.accept();
            const std::lock_guard<std::mutex> lock( mutex_ );
            links_.push_back( std::move( conn ) );
            const auto index = links_.size() - 1;
            receivers_.emplace_back(
                [ this, index ]() { receive_loop( index ); } );
        }
        catch( const raft::net_exception & )
        {
            return; /** listener closed during stop() **/
        }
    }
}

void oar_node::receive_loop( const std::size_t link_index )
{
    for( ;; )
    {
        node_status incoming{};
        try
        {
            tcp_connection *link;
            {
                const std::lock_guard<std::mutex> lock( mutex_ );
                link = &links_[ link_index ];
            }
            if( !link->recv_all( &incoming, sizeof( incoming ) ) )
            {
                return; /** peer done **/
            }
        }
        catch( const raft::net_exception & )
        {
            return; /** link torn down **/
        }
        const std::lock_guard<std::mutex> lock( mutex_ );
        auto &slot = registry_[ incoming.node_id ];
        if( incoming.timestamp_ns >= slot.timestamp_ns )
        {
            slot = incoming;
        }
    }
}

void oar_node::heartbeat_loop()
{
    while( running_.load( std::memory_order_acquire ) )
    {
        const auto status = self_status();
        {
            const std::lock_guard<std::mutex> lock( mutex_ );
            for( auto &link : links_ )
            {
                if( !link.valid() )
                {
                    continue;
                }
                try
                {
                    link.send_all( &status, sizeof( status ) );
                }
                catch( const raft::net_exception & )
                {
                    link.close(); /** peer gone; drop the link **/
                }
            }
        }
        std::this_thread::sleep_for( interval_ );
    }
}

} /** end namespace raft::net **/
