/**
 * codec.hpp — link data compression (§4.2: "Future versions will
 * incorporate link data compression as well, further improving the
 * cache-able data.").
 *
 * Two dependency-free codecs sized for stream payloads:
 *
 *  - RLE over raw bytes: (byte, count) pairs. Worst case 2× expansion,
 *    large wins on the run-heavy payloads streaming apps ship (zeroed
 *    struct padding, repeated tiles). Safe decoder: malformed input
 *    throws, output size is bounded by the caller.
 *  - zigzag + varint delta coding for integral sequences: consecutive
 *    stream elements are usually close in value (sequence numbers,
 *    offsets, sensor samples), so deltas fit in 1-2 bytes.
 *
 * The compressed TCP kernels (tcp_kernels.hpp) batch elements, compress
 * the batch with RLE, and frame it; per-type specializations can swap in
 * the delta codec.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "core/exceptions.hpp"

namespace raft::net {

/** @name RLE byte codec */
///@{
std::vector<std::uint8_t> rle_compress( const std::uint8_t *data,
                                        std::size_t n );

/** Throws net_exception on malformed input or when the decoded size
 *  would exceed max_output. */
std::vector<std::uint8_t> rle_decompress( const std::uint8_t *data,
                                          std::size_t n,
                                          std::size_t max_output );
///@}

/** @name scalar frame batching (tcp_kernels wire format)
 * One stream element travels as [1 signal byte][payload_size bytes]; the
 * end-of-stream marker is a lone 0xFF signal byte, and a lone 0xFE signal
 * byte is a heartbeat — an idle link's keep-alive that carries no payload
 * and is skipped by the scanner (receivers prove the peer is alive without
 * disturbing the element stream). These helpers let the TCP kernels gather
 * many frames into one buffer (single send(2)) and scan a received byte
 * buffer for the complete frames it contains (single recv(2) feeding a
 * batched queue publication).
 */
///@{
inline constexpr std::uint8_t scalar_eof_frame       = 0xFF;
inline constexpr std::uint8_t scalar_heartbeat_frame = 0xFE;

/** Append one [sig][payload] frame to out. */
void append_scalar_frame( std::vector<std::uint8_t> &out,
                          std::uint8_t sig,
                          const void *payload,
                          std::size_t payload_size );

struct frame_scan_result
{
    std::size_t frames{ 0 };   /**< complete payload frames found      */
    std::size_t consumed{ 0 }; /**< bytes covered incl. any EOF marker */
    bool eof{ false };         /**< hit the end-of-stream marker       */
};

/** Count the complete [sig][payload] frames at the front of data[0..n),
 *  skipping heartbeat bytes and stopping at the EOF marker or a partial
 *  trailing frame. With no heartbeats present, frame i starts at offset
 *  i * (1 + payload_size); compact_scalar_frames() restores that layout
 *  otherwise. */
frame_scan_result scan_scalar_frames( const std::uint8_t *data,
                                      std::size_t n,
                                      std::size_t payload_size ) noexcept;

/** Remove heartbeat bytes in place from data[0..n): after this the frames
 *  scan_scalar_frames() counted are contiguous. Returns the new length. */
std::size_t compact_scalar_frames( std::uint8_t *data, std::size_t n,
                                   std::size_t payload_size ) noexcept;
///@}

/** @name varint / zigzag primitives */
///@{
inline std::uint64_t zigzag_encode( const std::int64_t v ) noexcept
{
    return ( static_cast<std::uint64_t>( v ) << 1 ) ^
           static_cast<std::uint64_t>( v >> 63 );
}

inline std::int64_t zigzag_decode( const std::uint64_t u ) noexcept
{
    return static_cast<std::int64_t>( u >> 1 ) ^
           -static_cast<std::int64_t>( u & 1 );
}

void put_varint( std::vector<std::uint8_t> &out, std::uint64_t v );

/** Returns the advanced cursor; throws net_exception on truncation. */
const std::uint8_t *get_varint( const std::uint8_t *p,
                                const std::uint8_t *end,
                                std::uint64_t &out );
///@}

/** @name delta codec for integral streams */
///@{
template <class T>
std::vector<std::uint8_t> delta_compress( const T *values,
                                          const std::size_t n )
{
    static_assert( std::is_integral_v<T>,
                   "delta codec is for integral element types" );
    std::vector<std::uint8_t> out;
    out.reserve( n * 2 + 10 );
    put_varint( out, n );
    std::int64_t prev = 0;
    for( std::size_t i = 0; i < n; ++i )
    {
        const auto v = static_cast<std::int64_t>( values[ i ] );
        put_varint( out, zigzag_encode( v - prev ) );
        prev = v;
    }
    return out;
}

template <class T>
std::vector<T> delta_decompress( const std::uint8_t *data,
                                 const std::size_t n,
                                 const std::size_t max_elements )
{
    static_assert( std::is_integral_v<T>,
                   "delta codec is for integral element types" );
    const auto *p   = data;
    const auto *end = data + n;
    std::uint64_t count = 0;
    p = get_varint( p, end, count );
    if( count > max_elements )
    {
        throw net_exception( "delta stream claims too many elements" );
    }
    std::vector<T> out;
    out.reserve( count );
    std::int64_t prev = 0;
    for( std::uint64_t i = 0; i < count; ++i )
    {
        std::uint64_t d = 0;
        p    = get_varint( p, end, d );
        prev = prev + zigzag_decode( d );
        out.push_back( static_cast<T>( prev ) );
    }
    if( p != end )
    {
        throw net_exception( "trailing bytes in delta stream" );
    }
    return out;
}
///@}

} /** end namespace raft::net **/
