#include "net/remote.hpp"

#include "core/exceptions.hpp"

namespace raft::net {

job_server::job_server() : listener_( 0 )
{
    accept_thread_ = std::thread( [ this ]() { accept_loop(); } );
}

job_server::~job_server() { stop(); }

void job_server::register_job( const std::string &name,
                               handler_t handler )
{
    const std::lock_guard<std::mutex> lock( mutex_ );
    jobs_[ name ] = std::move( handler );
}

std::uint16_t job_server::port() const noexcept
{
    return listener_.port();
}

void job_server::stop()
{
    if( !running_.exchange( false ) )
    {
        return;
    }
    listener_.close();
    if( accept_thread_.joinable() )
    {
        accept_thread_.join();
    }
    std::vector<std::thread> workers;
    {
        const std::lock_guard<std::mutex> lock( mutex_ );
        workers = std::move( workers_ );
    }
    for( auto &w : workers )
    {
        if( w.joinable() )
        {
            w.join();
        }
    }
}

void job_server::accept_loop()
{
    while( running_.load( std::memory_order_acquire ) )
    {
        std::shared_ptr<tcp_connection> conn;
        try
        {
            conn = std::make_shared<tcp_connection>(
                listener_.accept() );
        }
        catch( const net_exception & )
        {
            return; /** listener closed during stop() **/
        }

        /** read the job request header **/
        handler_t handler;
        try
        {
            std::uint16_t len = 0;
            if( !conn->recv_all( &len, sizeof( len ) ) || len == 0 ||
                len > 512 )
            {
                continue;
            }
            std::string name( len, '\0' );
            if( !conn->recv_all( name.data(), len ) )
            {
                continue;
            }
            {
                const std::lock_guard<std::mutex> lock( mutex_ );
                const auto it = jobs_.find( name );
                if( it != jobs_.end() )
                {
                    handler = it->second;
                }
            }
            const std::uint8_t status = handler ? ack : nak;
            conn->send_all( &status, 1 );
            if( !handler )
            {
                continue;
            }
        }
        catch( const net_exception & )
        {
            continue; /** malformed client: drop the connection **/
        }

        const std::lock_guard<std::mutex> lock( mutex_ );
        workers_.emplace_back(
            [ this, handler = std::move( handler ), conn ]() mutable {
                try
                {
                    handler( std::move( conn ) );
                }
                catch( ... )
                {
                    /** a failing job must not take the server down **/
                }
                served_.fetch_add( 1, std::memory_order_relaxed );
            } );
    }
}

std::shared_ptr<tcp_connection> request_job( const std::string &host,
                                             const std::uint16_t port,
                                             const std::string &name )
{
    auto conn = std::make_shared<tcp_connection>(
        tcp_connection::connect( host, port ) );
    const auto len = static_cast<std::uint16_t>( name.size() );
    conn->send_all( &len, sizeof( len ) );
    conn->send_all( name.data(), name.size() );
    std::uint8_t status = 0;
    if( !conn->recv_all( &status, 1 ) ||
        status != job_server::ack )
    {
        throw net_exception( "job '" + name +
                             "' not published by the server" );
    }
    return conn;
}

} /** end namespace raft::net **/
