/**
 * matmul_pipeline — the Figure 4 workload as an application: a streaming
 * blocked matrix multiply with automatic parallelization of the multiply
 * kernel, dynamic queue resizing, and a printout of the performance
 * monitoring the runtime collects (queue occupancy, service rates,
 * resize activity).
 *
 *   $ ./example_matmul_pipeline [n] [replicas]
 */
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include <algo/matmul.hpp>
#include <raft.hpp>

int main( int argc, char **argv )
{
    const std::size_t n =
        argc > 1 ? static_cast<std::size_t>( std::atoll( argv[ 1 ] ) )
                 : 256;
    const std::size_t width =
        argc > 2 ? static_cast<std::size_t>( std::atoll( argv[ 2 ] ) )
                 : 2;

    const auto A = raft::algo::matrix::random( n, 1 );
    const auto B = raft::algo::matrix::random( n, 2 );
    raft::algo::matrix C( n );

    raft::runtime::perf_snapshot stats;
    raft::map m;
    auto p = m.link<raft::out>(
        raft::kernel::make<raft::algo::mm_source>( n ),
        raft::kernel::make<raft::algo::mm_multiply>( &A, &B ) );
    m.link<raft::out>( &( p.dst ),
                       raft::kernel::make<raft::algo::mm_sink>( &C ) );

    raft::run_options opts;
    opts.replication_width      = width;
    opts.initial_queue_capacity = 8; /** let the monitor grow them **/
    opts.stats_out              = &stats;

    const auto t0 = std::chrono::steady_clock::now();
    m.exe( opts );
    const auto dt = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0 )
                        .count();

    /** verify against the reference multiply **/
    const auto ref   = raft::algo::multiply_reference( A, B );
    double max_err   = 0.0;
    for( std::size_t i = 0; i < n * n; ++i )
    {
        max_err = std::max( max_err, std::abs( C.a[ i ] - ref.a[ i ] ) );
    }

    const double gflops =
        2.0 * static_cast<double>( n ) * n * n / dt / 1e9;
    std::printf( "C = A*B for n=%zu with %zu multiply replicas: "
                 "%.3f s (%.2f GFLOP/s), max |err| = %g\n",
                 n, width, dt, gflops, max_err );

    std::printf( "\nstream monitoring (%llu monitor ticks over "
                 "%.3f s):\n",
                 static_cast<unsigned long long>( stats.monitor_ticks ),
                 stats.wall_seconds );
    std::printf( "  %-30s %-30s %9s %9s %8s %8s\n", "src", "dst",
                 "items", "rate/s", "mean_occ", "resizes" );
    for( const auto &s : stats.streams )
    {
        std::printf( "  %-30.30s %-30.30s %9llu %9.0f %8.1f %8zu\n",
                     s.src_kernel.c_str(), s.dst_kernel.c_str(),
                     static_cast<unsigned long long>( s.popped ),
                     s.service_rate_hz, s.mean_occupancy,
                     s.resize_count );
    }
    std::printf( "\noccupancy histogram of the result-tile stream "
                 "(10%% buckets):\n  " );
    if( !stats.streams.empty() )
    {
        const auto &h = stats.streams.back().occupancy;
        for( std::size_t b = 0;
             b < raft::runtime::occupancy_histogram::bucket_count; ++b )
        {
            std::printf( "%4.0f%%", h.fraction( b ) * 100.0 );
        }
        std::printf( "\n" );
    }
    return max_err < 1e-9 ? 0 : 1;
}
