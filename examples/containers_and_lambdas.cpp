/**
 * containers_and_lambdas — the legacy-integration features of §4.2:
 *
 *  - Figure 5: C++ standard-library containers as stream sources and
 *    sinks (read_each / write_each);
 *  - Figure 6: for_each — a user array used in place as a zero-copy
 *    queue, reduced to a single value;
 *  - Figure 7: lambda kernels (lambdak) — fully functional kernels with
 *    no class boilerplate;
 *  - seq_tag / reorder: out-of-order parallel processing with order
 *    restored downstream (§4.1's third ordering paradigm).
 */
#include <cstdio>
#include <iterator>
#include <numeric>
#include <vector>

#include <raft.hpp>

int main()
{
    /* ---- Figure 5: container to container ---- */
    {
        /** data source container **/
        std::vector<std::uint32_t> v;
        int i( 0 );
        auto func( [ & ]() { return i++; } );
        while( i < 1000 )
        {
            v.push_back( func() );
        }
        /** receiver container **/
        std::vector<std::uint32_t> o;
        raft::map map;
        map.link( raft::kernel::make<raft::read_each<std::uint32_t>>(
                      v.begin(), v.end() ),
                  raft::kernel::make<raft::write_each<std::uint32_t>>(
                      std::back_inserter( o ) ) );
        map.exe();
        /** data is now copied to 'o' **/
        std::printf( "figure 5: copied %zu elements via independent "
                     "threads (equal: %s)\n",
                     o.size(), o == v ? "yes" : "no" );
    }

    /* ---- Figure 6: zero-copy for_each + reduce ---- */
    {
        std::vector<int> arr( 100'000 );
        std::iota( arr.begin(), arr.end(), 0 );
        int val = 0;
        raft::map map;
        map.link( raft::kernel::make<raft::for_each<int>>(
                      arr.data(), arr.size() ),
                  raft::kernel::make<raft::range_reduce<int>>( val ) );
        map.exe();
        /** val now has the result **/
        std::printf( "figure 6: zero-copy reduction over %zu ints = %d "
                     "(expected %d)\n",
                     arr.size(), val,
                     std::accumulate( arr.begin(), arr.end(), 0 ) );
    }

    /* ---- Figure 7: lambda kernels ---- */
    {
        std::size_t emitted = 0;
        raft::map map;
        map.link(
            /** instantiate lambda kernel as source **/
            raft::kernel::make<raft::lambdak<std::uint32_t>>(
                0, 1,
                [ &emitted ]( raft::Port &,
                              raft::Port &output ) -> raft::kstatus {
                    if( emitted == 8 )
                    {
                        return raft::stop;
                    }
                    auto out( output[ "0" ]
                                  .allocate_s<std::uint32_t>() );
                    ( *out ) = static_cast<std::uint32_t>(
                        emitted * emitted );
                    ++emitted;
                    return raft::proceed;
                } /** end lambda kernel **/ ),
            /** instantiate print kernel as destination **/
            raft::kernel::make<raft::print<std::uint32_t, ' '>>() );
        std::printf( "figure 7: lambda kernel emits squares: " );
        map.exe();
        std::printf( "\n" );
    }

    /* ---- §4.1: out-of-order processing, re-ordered later ---- */
    {
        class tagged_negate : public raft::kernel
        {
        public:
            tagged_negate()
            {
                input.addPort<raft::seq_item<int>>( "0" );
                output.addPort<raft::seq_item<int>>( "0" );
            }
            raft::kstatus run() override
            {
                auto v = input[ "0" ].pop_s<raft::seq_item<int>>();
                auto o =
                    output[ "0" ].allocate_s<raft::seq_item<int>>();
                o->seq   = v->seq;
                o->value = -v->value;
                return raft::proceed;
            }
            bool clone_supported() const override { return true; }
            raft::kernel *clone() const override
            {
                return new tagged_negate();
            }
        };

        std::vector<int> out;
        raft::map m;
        auto a = m.link( raft::kernel::make<raft::generate<int>>(
                             10'000,
                             []( std::size_t i ) { return int( i ); } ),
                         raft::kernel::make<raft::seq_tag<int>>() );
        auto b = m.link<raft::out>(
            &( a.dst ), raft::kernel::make<tagged_negate>() );
        auto c = m.link<raft::out>(
            &( b.dst ), raft::kernel::make<raft::reorder<int>>() );
        m.link( &( c.dst ), raft::kernel::make<raft::write_each<int>>(
                                std::back_inserter( out ) ) );
        raft::run_options opts;
        opts.replication_width = 4;
        m.exe( opts );
        bool ordered = true;
        for( std::size_t i = 0; i < out.size(); ++i )
        {
            ordered = ordered && out[ i ] == -static_cast<int>( i );
        }
        std::printf( "reorder: %zu elements processed by 4 replicas, "
                     "order restored: %s\n",
                     out.size(), ordered ? "yes" : "no" );
    }
    return 0;
}
