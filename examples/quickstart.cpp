/**
 * quickstart — the paper's running example, end to end (Figures 1-3).
 *
 * Two number-generator kernels feed a sum kernel that feeds a print
 * kernel. Each kernel is written sequentially; the runtime supplies the
 * parallelism (one thread per kernel by default), allocates and
 * dynamically resizes the streams, and tears everything down when the
 * sources finish.
 *
 *   $ ./example_quickstart [count]
 */
#include <cstdlib>
#include <iostream>

#include <raft.hpp>

int main( int argc, char **argv )
{
    const std::size_t count =
        argc > 1 ? static_cast<std::size_t>( std::atoll( argv[ 1 ] ) )
                 : 10;

    raft::map map;

    /** Figure 3, almost verbatim **/
    auto linked_kernels( map.link(
        raft::kernel::make<raft::generate<std::int64_t>>( count ),
        raft::kernel::make<
            raft::sum<std::int64_t, std::int64_t, std::int64_t>>(),
        "input_a" ) );
    map.link(
        raft::kernel::make<raft::generate<std::int64_t>>( count ),
        &( linked_kernels.dst ), "input_b" );
    map.link( &( linked_kernels.dst ),
              raft::kernel::make<raft::print<std::int64_t, '\n'>>() );

    map.exe();

    std::cerr << "summed " << count << " random pairs across "
              << map.graph().kernels().size()
              << " kernels / " << map.graph().edges().size()
              << " streams\n";
    return 0;
}
