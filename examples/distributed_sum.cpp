/**
 * distributed_sum — the same sum application as quickstart, executed
 * across two "nodes" connected by a TCP stream, with an oar status mesh
 * gossiping load between them (§1: "network links simply become part of
 * the stream"; §4.1's oar system).
 *
 * Node A (producer) and node B (consumer) are threads here so the example
 * is self-contained, but every byte between them crosses a real loopback
 * TCP socket through the same code path remote hosts would use. Note
 * that node B's application code is identical to a local pipeline — the
 * stream just happens to originate on another node.
 */
#include <chrono>
#include <cstdio>
#include <iterator>
#include <thread>
#include <vector>

#include <net/oar.hpp>
#include <net/socket.hpp>
#include <net/tcp_kernels.hpp>
#include <raft.hpp>

int main()
{
    using i64 = std::int64_t;
    const std::size_t count = 100'000;

    /** the oar mesh: both nodes report status **/
    raft::net::oar_node node_a_status( 1 );
    raft::net::oar_node node_b_status( 2 );
    node_a_status.connect_to( "127.0.0.1", node_b_status.port() );

    raft::net::tcp_listener listener( 0 );
    const auto port = listener.port();

    /** node B: receive the stream, print a sample, count it **/
    std::vector<i64> received;
    std::thread node_b( [ & ]() {
        auto conn = listener.accept();
        raft::map m;
        m.link( raft::kernel::make<raft::net::tcp_source<i64>>(
                    std::move( conn ) ),
                raft::kernel::make<raft::write_each<i64>>(
                    std::back_inserter( received ) ) );
        node_b_status.set_load( 0.3, 0.7, 2 );
        m.exe();
    } );

    /** node A: generate + sum, then ship the stream over TCP **/
    {
        raft::map m;
        auto conn =
            raft::net::tcp_connection::connect( "127.0.0.1", port );
        auto linked = m.link(
            raft::kernel::make<raft::generate<i64>>(
                count, []( std::size_t i ) { return i64( i ); } ),
            raft::kernel::make<raft::sum<i64, i64, i64>>(),
            "input_a" );
        m.link( raft::kernel::make<raft::generate<i64>>(
                    count,
                    []( std::size_t i ) { return i64( 10 * i ); } ),
                &( linked.dst ), "input_b" );
        m.link( &( linked.dst ),
                raft::kernel::make<raft::net::tcp_sink<i64>>(
                    std::move( conn ) ) );
        node_a_status.set_load( 0.8, 0.2, 4 );
        m.exe();
    }
    node_b.join();

    bool correct = received.size() == count;
    for( std::size_t i = 0; i < received.size(); i += 1009 )
    {
        correct = correct && received[ i ] == i64( 11 * i );
    }
    std::printf( "node B received %zu sums over TCP, values correct: "
                 "%s\n",
                 received.size(), correct ? "yes" : "no" );

    /** give the mesh a beat to exchange status, then show it **/
    std::this_thread::sleep_for( std::chrono::milliseconds( 100 ) );
    for( const auto &[ id, st ] : node_a_status.registry() )
    {
        std::printf( "oar: node %u sees peer %u with load %.1f and %u "
                     "kernels\n",
                     node_a_status.id(), id, st.load,
                     st.kernel_count );
    }
    node_a_status.stop();
    node_b_status.stop();
    return correct ? 0 : 1;
}
