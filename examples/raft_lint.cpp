/**
 * raft_lint — run the raft::analyze graph linter over a topology without
 * executing it.
 *
 * The built-in demo graphs cover the diagnostic catalogue (docs/API.md
 * "Static analysis & lint"): one healthy pipeline and one seeded instance
 * of each flagship hazard. In a real project the same three lines —
 * assemble a raft::map, call raft::analyze, render the report — lint any
 * graph before deployment; the demos exist so the linter can be exercised
 * (and its JSON schema consumed) with no application code at all.
 *
 *   $ ./example_raft_lint --list
 *   $ ./example_raft_lint --graph deadlock-cycle
 *   $ ./example_raft_lint --graph all --json > lint.json
 *   $ ./example_raft_lint --selftest   # CI: expected diagnostics fire
 *
 * Exit status (lint-style): 0 when every analyzed graph is free of
 * error-severity diagnostics, 1 otherwise, 2 on usage errors.
 */
#include <cstring>
#include <functional>
#include <iostream>
#include <iterator>
#include <string>
#include <vector>

#include <raft.hpp>

namespace {

/** pass-through with one in / one out port — building block for cycles */
class relay : public raft::kernel
{
public:
    relay()
    {
        input.addPort<int>( "in" );
        output.addPort<int>( "out" );
    }
    raft::kstatus run() override { return raft::stop; }
};

/** clonable (replication candidate) but order-sensitive — exactly the
 *  combination auto-parallelization must not replicate */
class stamped_worker : public raft::kernel
{
public:
    stamped_worker()
    {
        input.addPort<int>( "in" );
        output.addPort<int>( "out" );
    }
    raft::kstatus run() override
    {
        int v = 0;
        input[ "in" ].pop( v );
        output[ "out" ].push( v );
        return raft::proceed;
    }
    bool clone_supported() const override { return true; }
    raft::kernel *clone() const override
    {
        return raft::kernel::make<stamped_worker>();
    }
    bool order_sensitive() const override { return true; }
};

struct demo
{
    const char *name;
    const char *blurb;
    /** expected flagship diagnostic id; "" = the graph must be clean */
    const char *expect;
    std::function<void( raft::map &, raft::run_options & )> build;
};

/** scratch sinks for write_each demos (never executed, only analyzed) */
std::vector<int> g_int_sink;
std::vector<std::int64_t> g_i64_sink;

const std::vector<demo> &demos()
{
    using i64 = std::int64_t;
    static const std::vector<demo> d = {
        { "quickstart",
          "the paper's Figure-3 sum pipeline — analysis must stay silent",
          "",
          []( raft::map &m, raft::run_options & )
          {
              auto linked = m.link(
                  raft::kernel::make<raft::generate<i64>>( 16 ),
                  raft::kernel::make<raft::sum<i64, i64, i64>>(),
                  "input_a" );
              m.link( raft::kernel::make<raft::generate<i64>>( 16 ),
                      &( linked.dst ), "input_b" );
              m.link( &( linked.dst ),
                      raft::kernel::make<raft::write_each<i64>>(
                          std::back_inserter( g_i64_sink ) ) );
          } },
        { "deadlock-cycle",
          "two-kernel cycle over fixed-capacity FIFOs (dynamic_resize off)",
          "deadlock-cycle",
          []( raft::map &m, raft::run_options &o )
          {
              auto *a = raft::kernel::make<relay>();
              auto *b = raft::kernel::make<relay>();
              m.link( a, "out", b, "in" );
              m.link( b, "out", a, "in" );
              o.dynamic_resize         = false;
              o.initial_queue_capacity = 4;
          } },
        { "unconnected",
          "sum kernel with input_b never linked — would block forever",
          "unconnected-port",
          []( raft::map &m, raft::run_options & )
          {
              auto *s = raft::kernel::make<raft::sum<i64, i64, i64>>();
              m.link( raft::kernel::make<raft::generate<i64>>( 8 ), s,
                      "input_a" );
              m.link( s, raft::kernel::make<raft::print<i64>>() );
          } },
        { "lossy",
          "double stream into an int sink — fractional values truncated",
          "lossy-conversion",
          []( raft::map &m, raft::run_options & )
          {
              m.link( raft::kernel::make<raft::generate<double>>(
                          8, []( std::size_t i )
                          { return static_cast<double>( i ) + 0.5; } ),
                      raft::kernel::make<raft::write_each<int>>(
                          std::back_inserter( g_int_sink ) ) );
          } },
        { "ooo-replica",
          "order-sensitive kernel on out-of-order (replicable) lanes",
          "ooo-unsafe-replica-lane",
          []( raft::map &m, raft::run_options & )
          {
              auto *w = raft::kernel::make<stamped_worker>();
              m.link<raft::out>(
                  raft::kernel::make<raft::generate<int>>(
                      8, []( std::size_t i )
                      { return static_cast<int>( i ); } ),
                  w, "in" );
              m.link<raft::out>( w,
                                 raft::kernel::make<raft::write_each<int>>(
                                     std::back_inserter( g_int_sink ) ) );
          } },
        { "restart-no-reset",
          "restart policy on kernels without a state-reset hook",
          "restart-no-reset",
          []( raft::map &m, raft::run_options &o )
          {
              auto *w = raft::kernel::make<stamped_worker>();
              m.link( raft::kernel::make<raft::generate<int>>(
                          8, []( std::size_t i )
                          { return static_cast<int>( i ); } ),
                      w, "in" );
              m.link( w, raft::kernel::make<raft::write_each<int>>(
                             std::back_inserter( g_int_sink ) ) );
              o.enable_auto_parallel = false;
              o.supervision.enabled  = true;
              o.supervision.default_restart.max_restarts = 2;
          } },
    };
    return d;
}

const demo *find_demo( const std::string &name )
{
    for( const auto &d : demos() )
    {
        if( name == d.name )
        {
            return &d;
        }
    }
    return nullptr;
}

raft::analysis::report analyze_demo( const demo &d )
{
    raft::map m;
    raft::run_options o;
    d.build( m, o );
    return raft::analyze( m, o );
}

int usage( std::ostream &os, const int code )
{
    os << "usage: raft_lint [--graph NAME|all] [--json] [--list] "
          "[--selftest]\n"
          "  --graph NAME  analyze one demo graph (default: all)\n"
          "  --json        emit the machine-readable report(s)\n"
          "  --list        list the demo graphs\n"
          "  --selftest    verify every expected diagnostic fires\n";
    return code;
}

bool has_diag( const raft::analysis::report &r, const std::string &id )
{
    for( const auto &diag : r.diagnostics )
    {
        if( diag.id == id )
        {
            return true;
        }
    }
    return false;
}

int selftest()
{
    int failures = 0;
    for( const auto &d : demos() )
    {
        const auto rep = analyze_demo( d );
        const bool pass = ( d.expect[ 0 ] == '\0' )
                              ? rep.clean()
                              : has_diag( rep, d.expect );
        std::cout << ( pass ? "ok   " : "FAIL " ) << d.name << " (expect "
                  << ( d.expect[ 0 ] ? d.expect : "clean" ) << ")\n";
        if( !pass )
        {
            std::cout << rep.to_string() << '\n';
            ++failures;
        }
    }
    std::cout << ( failures ? "selftest FAILED\n" : "selftest passed\n" );
    return failures ? 1 : 0;
}

} /** end anonymous namespace **/

int main( int argc, char **argv )
{
    std::string graph = "all";
    bool json         = false;
    for( int i = 1; i < argc; ++i )
    {
        const std::string a( argv[ i ] );
        if( a == "--list" )
        {
            for( const auto &d : demos() )
            {
                std::cout << d.name << " — " << d.blurb << '\n';
            }
            return 0;
        }
        if( a == "--selftest" )
        {
            return selftest();
        }
        if( a == "--json" )
        {
            json = true;
        }
        else if( a == "--graph" && i + 1 < argc )
        {
            graph = argv[ ++i ];
        }
        else if( a == "--help" || a == "-h" )
        {
            return usage( std::cout, 0 );
        }
        else
        {
            std::cerr << "raft_lint: unknown argument '" << a << "'\n";
            return usage( std::cerr, 2 );
        }
    }

    std::vector<const demo *> selected;
    if( graph == "all" )
    {
        for( const auto &d : demos() )
        {
            selected.push_back( &d );
        }
    }
    else if( const auto *d = find_demo( graph ) )
    {
        selected.push_back( d );
    }
    else
    {
        std::cerr << "raft_lint: no demo graph named '" << graph
                  << "' (try --list)\n";
        return 2;
    }

    bool any_errors = false;
    if( json )
    {
        /** one array entry per graph, each wrapping the report document */
        std::cout << "[\n";
        for( std::size_t i = 0; i < selected.size(); ++i )
        {
            const auto rep = analyze_demo( *selected[ i ] );
            any_errors     = any_errors || !rep.ok();
            std::cout << "  { \"graph\": \"" << selected[ i ]->name
                      << "\", \"report\": " << rep.to_json() << " }"
                      << ( i + 1 < selected.size() ? "," : "" ) << '\n';
        }
        std::cout << "]\n";
    }
    else
    {
        for( const auto *d : selected )
        {
            const auto rep = analyze_demo( *d );
            any_errors     = any_errors || !rep.ok();
            std::cout << "== " << d->name << " ==\n"
                      << rep.to_string() << "\n\n";
        }
    }
    return any_errors ? 1 : 0;
}
