/**
 * text_search — the paper's §5 benchmark application as a usable tool
 * (Figures 8 & 9): filereader → n × search<Algo> → match collector.
 *
 * The match kernels are replicated automatically because the links are
 * declared raft::out and search kernels are clonable; the file's bytes
 * never leave their buffer (zero-copy segment descriptors). The algorithm
 * is selected by template parameter, demonstrating the synonymous-kernel
 * idea — swap Aho-Corasick for Boyer-Moore-Horspool without touching the
 * topology.
 *
 *   $ ./example_text_search <file> <pattern> [ac|bmh|bm] [width]
 *   $ ./example_text_search --demo            # synthetic corpus
 */
#include <chrono>
#include <cstdio>
#include <fstream>
#include <cstring>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include <algo/corpus.hpp>
#include <raft.hpp>

namespace {

template <class Algo>
std::vector<raft::match_t>
run_search( const std::shared_ptr<const std::string> &corpus,
            const std::string &pattern, const std::size_t width,
            raft::runtime::perf_snapshot *stats )
{
    std::vector<raft::match_t> total_hits;
    raft::map map;
    /** Figure 9, using the in-memory corpus ctor of filereader **/
    auto kern_start( map.link<raft::out>(
        raft::kernel::make<raft::filereader>( corpus,
                                              pattern.size() - 1 ),
        raft::kernel::make<raft::search<Algo>>( pattern ) ) );
    map.link<raft::out>(
        &( kern_start.dst ),
        raft::kernel::make<raft::write_each<raft::match_t>>(
            std::back_inserter( total_hits ) ) );
    raft::run_options opts;
    opts.replication_width = width;
    opts.stats_out         = stats;
    map.exe( opts );
    return total_hits;
}

} /** end anonymous namespace **/

int main( int argc, char **argv )
{
    std::string pattern = "stream processing";
    std::string algo    = "bmh";
    std::size_t width   = 2;

    std::shared_ptr<const std::string> corpus;
    if( argc >= 2 && std::strcmp( argv[ 1 ], "--demo" ) != 0 )
    {
        if( argc < 3 )
        {
            std::fprintf( stderr,
                          "usage: %s <file> <pattern> [ac|bmh|bm] "
                          "[width] | --demo\n",
                          argv[ 0 ] );
            return 1;
        }
        pattern = argv[ 2 ];
        if( argc >= 4 )
        {
            algo = argv[ 3 ];
        }
        if( argc >= 5 )
        {
            width = static_cast<std::size_t>( std::atoll( argv[ 4 ] ) );
        }
        std::ifstream f( argv[ 1 ], std::ios::binary );
        corpus = std::make_shared<const std::string>(
            std::istreambuf_iterator<char>( f ),
            std::istreambuf_iterator<char>() );
    }
    else
    {
        raft::algo::corpus_options copt;
        copt.size_bytes      = 16u << 20;
        copt.pattern         = pattern;
        copt.implant_per_mib = 6.0;
        corpus = std::make_shared<const std::string>(
            raft::algo::make_corpus( copt ) );
        std::printf( "demo mode: 16 MiB synthetic corpus, pattern "
                     "'%s'\n",
                     pattern.c_str() );
    }

    raft::runtime::perf_snapshot stats;
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<raft::match_t> hits;
    if( algo == "ac" )
    {
        hits = run_search<raft::ahocorasick>( corpus, pattern, width,
                                              &stats );
    }
    else if( algo == "bm" )
    {
        hits = run_search<raft::boyermoore>( corpus, pattern, width,
                                             &stats );
    }
    else
    {
        hits = run_search<raft::boyermoorehorspool>( corpus, pattern,
                                                     width, &stats );
    }
    const auto dt = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0 )
                        .count();

    std::printf( "%zu matches in %.3f s (%.2f GB/s) using %s, width "
                 "%zu\n",
                 hits.size(), dt,
                 static_cast<double>( corpus->size() ) / dt / 1e9,
                 algo.c_str(), width );
    for( std::size_t i = 0; i < hits.size() && i < 5; ++i )
    {
        std::printf( "  match at offset %zu\n", hits[ i ].offset );
    }

    std::printf( "\nper-stream statistics (the monitoring the paper "
                 "describes in §4.1):\n" );
    for( const auto &s : stats.streams )
    {
        std::printf( "  %-34.34s -> %-26.26s %9llu items, mean occ "
                     "%6.1f, %zu resizes\n",
                     s.src_kernel.c_str(), s.dst_kernel.c_str(),
                     static_cast<unsigned long long>( s.popped ),
                     s.mean_occupancy, s.resize_count );
    }
    return 0;
}
