/**
 * raft_top — a `top` for a running stream graph.
 *
 * Polls the Prometheus endpoint a telemetry-enabled map::exe() serves
 * (run_options::telemetry.serve_prometheus) and renders a refreshing
 * terminal table: per-kernel run counts, busy time and live service
 * rates, and per-stream occupancy against capacity with a utilization
 * bar. Everything shown is parsed back out of the text exposition
 * format, so this doubles as a worked example of consuming the scrape.
 *
 *   raft_top <port> [host] [--interval <ms>] [--iterations <n>]
 *            [--no-clear]
 *   raft_top --demo
 *
 * --demo runs a built-in pipeline with telemetry enabled in a background
 * thread and watches it for a few refreshes (the CI smoke path).
 */
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iterator>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <raft.hpp>

namespace {

using i64 = std::int64_t;
using namespace std::chrono_literals;

/** one parsed exposition sample **/
struct sample
{
    std::string name;
    std::map<std::string, std::string> labels;
    double value{ 0.0 };
};

/** Parse the text exposition format: NAME{k="v",...} VALUE per line.
 *  Comments (#) and histogram series are kept too — callers filter. */
std::vector<sample> parse_exposition( const std::string &body )
{
    std::vector<sample> out;
    std::istringstream is( body );
    std::string line;
    while( std::getline( is, line ) )
    {
        if( line.empty() || line[ 0 ] == '#' )
        {
            continue;
        }
        sample s;
        auto i = line.find_first_of( "{ " );
        if( i == std::string::npos )
        {
            continue;
        }
        s.name = line.substr( 0, i );
        if( line[ i ] == '{' )
        {
            const auto close = line.find( '}', i );
            if( close == std::string::npos )
            {
                continue;
            }
            auto rest = line.substr( i + 1, close - i - 1 );
            std::size_t p = 0;
            while( p < rest.size() )
            {
                const auto eq = rest.find( '=', p );
                if( eq == std::string::npos )
                {
                    break;
                }
                const auto key = rest.substr( p, eq - p );
                std::string val;
                std::size_t q = eq + 2; /** skip =" **/
                while( q < rest.size() && rest[ q ] != '"' )
                {
                    if( rest[ q ] == '\\' && q + 1 < rest.size() )
                    {
                        ++q;
                    }
                    val.push_back( rest[ q ] );
                    ++q;
                }
                s.labels[ key ] = val;
                p = q + 1;
                if( p < rest.size() && rest[ p ] == ',' )
                {
                    ++p;
                }
            }
            i = close + 1;
        }
        try
        {
            s.value = std::stod( line.substr( i ) );
        }
        catch( ... )
        {
            continue;
        }
        out.push_back( std::move( s ) );
    }
    return out;
}

double find_value( const std::vector<sample> &samples,
                   const std::string &name,
                   const std::map<std::string, std::string> &labels )
{
    for( const auto &s : samples )
    {
        if( s.name != name )
        {
            continue;
        }
        bool match = true;
        for( const auto &[ k, v ] : labels )
        {
            const auto it = s.labels.find( k );
            if( it == s.labels.end() || it->second != v )
            {
                match = false;
                break;
            }
        }
        if( match )
        {
            return s.value;
        }
    }
    return 0.0;
}

std::string util_bar( const double frac, const int width = 20 )
{
    const int fill = std::clamp(
        static_cast<int>( frac * width + 0.5 ), 0, width );
    std::string bar( "[" );
    bar.append( static_cast<std::size_t>( fill ), '#' );
    bar.append( static_cast<std::size_t>( width - fill ), '.' );
    bar += "]";
    return bar;
}

void render( const std::vector<sample> &samples, const bool clear )
{
    if( clear )
    {
        std::printf( "\x1b[2J\x1b[H" ); /** clear + home **/
    }
    std::printf( "raft_top — live stream-graph telemetry\n\n" );

    /** kernels: one row per (kernel, id) with a service-rate series **/
    std::printf( "%-34s %12s %10s %12s\n", "KERNEL", "RUNS", "BUSY s",
                 "RATE /s" );
    for( const auto &s : samples )
    {
        if( s.name != "raft_kernel_service_rate_hz" )
        {
            continue;
        }
        const auto kernel = s.labels.count( "kernel" )
                                ? s.labels.at( "kernel" )
                                : "?";
        const auto runs = find_value( samples, "raft_kernel_runs_total",
                                      s.labels );
        const auto busy = find_value(
            samples, "raft_kernel_busy_seconds_total", s.labels );
        std::printf( "%-34.34s %12.0f %10.3f %12.1f\n", kernel.c_str(),
                     runs, busy, s.value );
    }

    /** streams: occupancy vs capacity with a bar **/
    std::printf( "\n%-44s %8s %8s  %s\n", "STREAM", "OCC", "CAP",
                 "UTILIZATION" );
    for( const auto &s : samples )
    {
        if( s.name != "raft_stream_occupancy" )
        {
            continue;
        }
        const auto src = s.labels.count( "src" ) ? s.labels.at( "src" )
                                                 : "?";
        const auto dst = s.labels.count( "dst" ) ? s.labels.at( "dst" )
                                                 : "?";
        const auto cap = find_value( samples, "raft_stream_capacity",
                                     s.labels );
        const auto frac = cap > 0.0 ? s.value / cap : 0.0;
        const auto edge = src + " -> " + dst;
        std::printf( "%-44.44s %8.0f %8.0f  %s %4.0f%%\n", edge.c_str(),
                     s.value, cap, util_bar( frac ).c_str(),
                     frac * 100.0 );
    }

    /** runtime counters worth a glance **/
    std::printf( "\nmonitor ticks %.0f | fifo resizes %.0f | restarts "
                 "%.0f | cancellations %.0f\n",
                 find_value( samples, "raft_monitor_ticks_total", {} ),
                 find_value( samples, "raft_fifo_resizes_total", {} ),
                 find_value( samples, "raft_supervisor_restarts_total",
                             {} ),
                 find_value( samples, "raft_graph_cancellations_total",
                             {} ) );
}

int watch( const std::string &host, const std::uint16_t port,
           const std::chrono::milliseconds interval,
           const long iterations, const bool clear )
{
    long shown = 0;
    for( long i = 0; iterations < 0 || i < iterations; ++i )
    {
        std::string body;
        try
        {
            body = raft::telemetry::scrape_prometheus( host, port );
        }
        catch( const raft::net_exception & )
        {
            if( shown > 0 )
            {
                /** endpoint went away after we saw it: graph finished **/
                std::printf( "\nendpoint closed — graph finished.\n" );
                return 0;
            }
            std::this_thread::sleep_for( interval );
            continue;
        }
        render( parse_exposition( body ), clear );
        ++shown;
        std::this_thread::sleep_for( interval );
    }
    return shown > 0 ? 0 : 1;
}

/** Relay with a fixed per-element service time so the demo graph stays
 *  alive long enough to watch.  `on_first_run` fires once from the
 *  scheduler thread — it happens-after everything map::exe() did before
 *  spawning kernels, so it can safely publish bound_port_out. */
class slow_relay : public raft::kernel
{
public:
    explicit slow_relay( const std::chrono::microseconds delay,
                         std::function<void()> on_first_run )
        : delay_( delay ), first_( std::move( on_first_run ) )
    {
        input.addPort<i64>( "0" );
        output.addPort<i64>( "0" );
        set_name( "slow_relay" );
    }
    raft::kstatus run() override
    {
        if( first_ )
        {
            first_();
            first_ = nullptr;
        }
        auto v = input[ "0" ].pop_s<i64>();
        std::this_thread::sleep_for( delay_ );
        auto out = output[ "0" ].allocate_s<i64>();
        ( *out ) = *v;
        return raft::proceed;
    }

private:
    std::chrono::microseconds delay_;
    std::function<void()> first_;
};

/** --demo: a slow-middle pipeline with telemetry served on an ephemeral
 *  port, watched from this process **/
int run_demo()
{
    std::atomic<std::uint16_t> port{ 0 };
    std::uint16_t bound = 0;
    std::vector<i64> out;

    std::thread graph( [ & ]() {
        raft::map m;
        auto kp = m.link(
            raft::kernel::make<raft::generate<i64>>(
                100000,
                []( std::size_t i ) { return static_cast<i64>( i ); } ),
            raft::kernel::make<slow_relay>(
                5us, [ & ]() { port.store( bound ); } ) );
        m.link( &kp.dst, raft::kernel::make<raft::write_each<i64>>(
                             std::back_inserter( out ) ) );
        raft::run_options o;
        o.telemetry.enabled          = true;
        o.telemetry.serve_prometheus = true;
        o.telemetry.bound_port_out   = &bound;
        m.exe( o );
    } );

    while( port.load() == 0 )
    {
        std::this_thread::sleep_for( 1ms );
    }
    const auto rc = watch( "127.0.0.1", port.load(), 100ms, 5,
                           /*clear*/ false );
    graph.join();
    std::printf( "demo drained %zu elements\n", out.size() );
    return rc;
}

} /** end anonymous namespace **/

int main( int argc, char **argv )
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    auto interval      = std::chrono::milliseconds( 500 );
    long iterations    = -1; /** forever **/
    bool clear         = true;
    bool demo          = false;
    for( int i = 1; i < argc; ++i )
    {
        if( std::strcmp( argv[ i ], "--demo" ) == 0 )
        {
            demo = true;
        }
        else if( std::strcmp( argv[ i ], "--interval" ) == 0 &&
                 i + 1 < argc )
        {
            interval = std::chrono::milliseconds(
                std::atol( argv[ ++i ] ) );
        }
        else if( std::strcmp( argv[ i ], "--iterations" ) == 0 &&
                 i + 1 < argc )
        {
            iterations = std::atol( argv[ ++i ] );
        }
        else if( std::strcmp( argv[ i ], "--no-clear" ) == 0 )
        {
            clear = false;
        }
        else if( port == 0 && std::atoi( argv[ i ] ) > 0 )
        {
            port = static_cast<std::uint16_t>( std::atoi( argv[ i ] ) );
        }
        else
        {
            host = argv[ i ];
        }
    }
    if( demo )
    {
        return run_demo();
    }
    if( port == 0 )
    {
        std::fprintf(
            stderr,
            "usage: raft_top <port> [host] [--interval <ms>]\n"
            "                [--iterations <n>] [--no-clear]\n"
            "       raft_top --demo\n\n"
            "Point it at a graph run with\n"
            "  opts.telemetry.enabled = true;\n"
            "  opts.telemetry.serve_prometheus = true;\n" );
        return 2;
    }
    return watch( host, port, interval, iterations, clear );
}
