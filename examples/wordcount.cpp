/**
 * wordcount — the canonical big-data streaming job (§4.2 motivates
 * RaftLib with "long running, data intense applications such as big data
 * processing or real-time data analytics") built from library kernels:
 *
 *   filereader ─zero-copy segments─> n × tokenizer ─words─> counter
 *
 * The tokenizer is clonable and its links are raft::out, so the runtime
 * replicates it; word order across replicas doesn't matter because
 * counting commutes. Prints the top-10 words of a synthetic corpus (or a
 * file given on the command line).
 *
 *   $ ./example_wordcount [file]
 */
#include <algorithm>
#include <array>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <algo/corpus.hpp>
#include <raft.hpp>

namespace {

/** Fixed-size word token (trivially copyable: may cross any link). */
struct word_t
{
    std::array<char, 24> text{};
    std::uint8_t len{ 0 };

    std::string str() const { return std::string( text.data(), len ); }
};

/** Splits zero-copy corpus segments into word tokens. */
class tokenizer : public raft::kernel
{
public:
    tokenizer()
    {
        input.addPort<raft::mem_range>( "0" );
        output.addPort<word_t>( "0" );
    }

    raft::kstatus run() override
    {
        auto seg = input[ "0" ].pop_s<raft::mem_range>();
        std::size_t i = 0;
        /** a word belongs to the segment in whose body it starts **/
        while( i < seg->len )
        {
            while( i < seg->len &&
                   !std::isalpha( static_cast<unsigned char>(
                       seg->data[ i ] ) ) )
            {
                ++i;
            }
            const auto start = i;
            while( i < seg->len &&
                   std::isalpha( static_cast<unsigned char>(
                       seg->data[ i ] ) ) )
            {
                ++i;
            }
            /** a token at local offset 0 may be the tail of a word the
             *  previous segment owns: check the byte before (segments
             *  point into one contiguous corpus) **/
            const bool continuation =
                start == 0 && seg->offset > 0 &&
                std::isalpha( static_cast<unsigned char>(
                    seg->data[ -1 ] ) );
            if( i > start && start < seg->body_len && !continuation )
            {
                word_t w;
                w.len = static_cast<std::uint8_t>( std::min<std::size_t>(
                    i - start, w.text.size() ) );
                std::copy_n( seg->data + start, w.len,
                             w.text.begin() );
                output[ "0" ].push<word_t>( w );
            }
        }
        return raft::proceed;
    }

    bool clone_supported() const override { return true; }
    raft::kernel *clone() const override { return new tokenizer(); }
};

/** Terminal counter. */
class counter : public raft::kernel
{
public:
    explicit counter( std::map<std::string, std::size_t> *counts )
        : counts_( counts )
    {
        input.addPort<word_t>( "0" );
    }
    raft::kstatus run() override
    {
        auto w = input[ "0" ].pop_s<word_t>();
        ++( *counts_ )[ w->str() ];
        return raft::proceed;
    }

private:
    std::map<std::string, std::size_t> *counts_;
};

} /** end anonymous namespace **/

int main( int argc, char **argv )
{
    std::shared_ptr<const std::string> corpus;
    if( argc > 1 )
    {
        std::ifstream f( argv[ 1 ], std::ios::binary );
        corpus = std::make_shared<const std::string>(
            std::istreambuf_iterator<char>( f ),
            std::istreambuf_iterator<char>() );
    }
    else
    {
        raft::algo::corpus_options o;
        o.size_bytes = 8u << 20;
        corpus       = std::make_shared<const std::string>(
            raft::algo::make_corpus( o ) );
        std::printf( "demo mode: 8 MiB synthetic corpus\n" );
    }

    std::map<std::string, std::size_t> counts;
    raft::map m;
    /** overlap 1: a word crossing a boundary is owned by the segment it
     *  starts in; the next segment skips its partial head **/
    auto p = m.link<raft::out>(
        raft::kernel::make<raft::filereader>( corpus, 64, 64 * 1024 ),
        raft::kernel::make<tokenizer>() );
    m.link<raft::out>( &( p.dst ),
                       raft::kernel::make<counter>( &counts ) );
    raft::run_options opts;
    opts.replication_width = 2;
    m.exe( opts );

    std::vector<std::pair<std::string, std::size_t>> ranked(
        counts.begin(), counts.end() );
    std::sort( ranked.begin(), ranked.end(),
               []( const auto &a, const auto &b ) {
                   return a.second > b.second;
               } );
    std::size_t total = 0;
    for( const auto &[ w, n ] : ranked )
    {
        total += n;
    }
    std::printf( "%zu words, %zu distinct; top 10:\n", total,
                 ranked.size() );
    for( std::size_t i = 0; i < ranked.size() && i < 10; ++i )
    {
        std::printf( "  %-20s %zu\n", ranked[ i ].first.c_str(),
                     ranked[ i ].second );
    }
    return 0;
}
